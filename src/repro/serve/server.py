"""The simulation server: asyncio front door over the job pool.

One :class:`SimServer` owns one :class:`~repro.jobs.pool.JobRunner`
(and its worker pool) plus one content-addressed
:class:`~repro.jobs.cache.ResultCache`, and multiplexes any number of
concurrent clients onto them:

* **Warm path** — every incoming spec is probed against the cache in
  the request handler itself; hits are answered straight from disk and
  never touch the queue, the pool, or admission accounting. Under a
  zipf-popular workload this is most of the traffic, which is what
  makes one small pool serve many clients.
* **Batching** — cold jobs from all clients land on one queue; a
  dispatcher coroutine drains it into pool submissions of up to
  ``batch_max`` jobs, waiting at most ``batch_window`` seconds after
  the first job so concurrent requests share a batch instead of
  serializing behind each other.
* **Admission control** — the queue is bounded (``queue_limit`` cold
  jobs admitted-but-unfinished) and each client has a concurrency cap
  (``per_client`` open requests). Requests beyond either bound are
  rejected *before* any state is allocated for them — a ``429`` JSON
  body with a ``Retry-After`` estimate — so offered load 10x beyond
  pool capacity costs rejected clients a round trip, not the server
  its memory.
* **Telemetry** — request counts, queue depth, cache hit rate, and
  request-latency histograms (p50/p99 via the registry's exact
  percentiles) flow into a :class:`~repro.telemetry.metrics
  .MetricsRegistry`; ``GET /stats`` snapshots all of it.

Shutdown is graceful by construction: the listener closes first, the
dispatcher drains admitted work through the runner, and
:meth:`JobRunner.request_stop` (wired to SIGINT/SIGTERM by the CLI)
bounds the drain — no orphaned worker processes either way.

The HTTP layer is deliberately minimal — stdlib asyncio streams, three
routes (``POST /submit``, ``GET /stats``, ``GET /healthz``),
``Connection: close`` framing — because the interesting contract is the
event stream, documented in :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import ServeError
from repro.jobs.cache import ResultCache, stats_document
from repro.jobs.pool import JobEvent, JobResult, JobRunner
from repro.jobs.spec import JobSpec
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    encode_event,
    event,
    result_document,
    shard_request,
)
from repro.telemetry.metrics import MetricsRegistry

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Fallback per-job seconds estimate before any job has finished,
#: used only to size Retry-After hints.
_DEFAULT_JOB_SECONDS = 0.5


@dataclass
class ServeConfig:
    """Everything `python -m repro.serve` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8642
    #: Pool workers backing cold jobs (1 = inline execution).
    n_workers: int = 2
    #: Max cold jobs admitted but not yet finished; beyond it, 429.
    queue_limit: int = 256
    #: Max open requests per client id; beyond it, 429.
    per_client: int = 16
    #: How long the dispatcher waits after the first queued job for
    #: more, so concurrent requests share one pool submission.
    batch_window: float = 0.01
    #: Max jobs per pool submission.
    batch_max: int = 32
    job_timeout: float | None = None
    retries: int = 1
    use_cache: bool = True
    cache_dir: str | None = None
    #: Seconds `stop()` waits for a graceful drain before force-killing
    #: in-flight jobs.
    drain_timeout: float = 10.0


@dataclass
class _Entry:
    """One cold job queued for the dispatcher, owned by one request."""

    spec: JobSpec
    request_index: int
    events: asyncio.Queue
    future: asyncio.Future


class SimServer:
    """Long-lived simulation-as-a-service front end (see module doc)."""

    def __init__(self, config: ServeConfig | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache: ResultCache | None = None
        if self.config.use_cache:
            self.cache = ResultCache(self.config.cache_dir) \
                if self.config.cache_dir else ResultCache.default()
        self.runner = JobRunner(
            n_workers=self.config.n_workers,
            cache=self.cache,
            timeout=self.config.job_timeout,
            retries=self.config.retries,
            metrics=self.metrics,
            on_event=self._on_job_event,
        )
        self.host = self.config.host
        self.port = self.config.port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        #: Batches run one at a time on this thread, so `_routing` needs
        #: no lock: it is written on the loop thread strictly before the
        #: batch starts and read from this worker thread while it runs.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-batch")
        self._queue: asyncio.Queue[_Entry | None] | None = None
        self._handlers: set[asyncio.Task] = set()
        self._routing: list[_Entry] | None = None
        #: In-flight dedup map: spec fingerprint -> the future of the
        #: one pool job running it. Identical cold specs arriving while
        #: that job is queued or running attach to the same future
        #: instead of submitting again (the request-level analogue of
        #: the result cache, for work too fresh to be cached yet).
        self._inflight: dict[str, asyncio.Future] = {}
        self._queued_jobs = 0
        self._active_clients: dict[str, int] = {}
        self._active_requests = 0
        self._next_request = 0
        self._closing = False
        self._started_mono = 0.0
        self._avg_job_seconds = _DEFAULT_JOB_SECONDS

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._started_mono = time.monotonic()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: close the door, drain, join everything.

        New submissions are refused (503) immediately; admitted work
        drains through the runner for up to ``drain_timeout`` seconds,
        after which in-flight jobs are force-cancelled. Either way no
        worker process outlives this call.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            await self._queue.put(None)
        if self._dispatcher is not None:
            try:
                await asyncio.wait_for(asyncio.shield(self._dispatcher),
                                       self.config.drain_timeout)
            except asyncio.TimeoutError:
                self.runner.request_stop(force=True)
                await self._dispatcher
        # On Python <= 3.11 wait_closed() does not wait for connection
        # handlers, so settle them explicitly: the dispatcher drain has
        # resolved their futures, they just need loop time to flush
        # their final events. Stragglers (a client not reading its
        # stream) are cancelled rather than waited on forever.
        if self._handlers:
            await asyncio.wait(set(self._handlers),
                               timeout=self.config.drain_timeout)
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Dispatcher: queue -> batched pool submissions
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None and self._loop is not None
        try:
            while True:
                head = await self._queue.get()
                if head is None:
                    return
                batch = [head]
                deadline = self._loop.time() + self.config.batch_window
                draining = False
                while len(batch) < self.config.batch_max:
                    remaining = deadline - self._loop.time()
                    if remaining <= 0:
                        break
                    try:
                        entry = await asyncio.wait_for(self._queue.get(),
                                                       remaining)
                    except asyncio.TimeoutError:
                        break
                    if entry is None:
                        draining = True
                        break
                    batch.append(entry)
                await self._run_batch(batch)
                if draining:
                    return
        finally:
            self._flush_stranded()

    def _flush_stranded(self) -> None:
        """Fail entries that raced past the shutdown sentinel.

        A /submit handler that passed its ``_closing`` check can still
        be mid-stream when :meth:`stop` inserts the sentinel; anything
        it enqueues afterwards would otherwise sit behind the sentinel
        forever, its future unresolved and its client hung.
        """
        assert self._queue is not None
        while True:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if entry is None:
                continue
            self._queued_jobs -= 1
            if not entry.future.done():
                entry.future.set_result(
                    JobResult(entry.spec, error="server is shutting down"))
        self.metrics.gauge("serve.queue_depth").set(self._queued_jobs)

    async def _run_batch(self, batch: list[_Entry]) -> None:
        assert self._loop is not None
        self.metrics.histogram("serve.batch_size").observe(len(batch))
        self._routing = batch
        specs = [entry.spec for entry in batch]
        failure: str | None = None
        try:
            results = await self._loop.run_in_executor(
                self._executor, self.runner.run, specs)
        except Exception as error:  # runner bug: fail the batch, not us
            results, failure = None, f"batch execution failed: {error!r}"
        finally:
            self._routing = None
        for position, entry in enumerate(batch):
            self._queued_jobs -= 1
            result = results[position] if results is not None \
                else JobResult(entry.spec, error=failure)
            if result.ok and result.elapsed > 0:
                self._avg_job_seconds = (0.8 * self._avg_job_seconds
                                         + 0.2 * result.elapsed)
            if not entry.future.done():
                entry.future.set_result(result)
        self.metrics.gauge("serve.queue_depth").set(self._queued_jobs)

    def _release_inflight(self, fingerprint: str, future) -> None:
        """Drop a resolved job from the dedup map (done callback)."""
        if self._inflight.get(fingerprint) is future:
            del self._inflight[fingerprint]

    def _on_job_event(self, job_event: JobEvent) -> None:
        """Forward pool progress to the owning request (worker thread)."""
        routing = self._routing
        if routing is None or self._loop is None:
            return
        if not 0 <= job_event.index < len(routing):
            return  # batch-level events (degrade) have index -1
        if job_event.kind in ("submitted", "hit"):
            return  # 'accepted' / the handler's own hit events cover these
        entry = routing[job_event.index]
        doc = event(job_event.kind, index=entry.request_index,
                    attempt=job_event.attempt)
        if job_event.detail:
            lines = job_event.detail.strip().splitlines()
            if lines:
                doc["detail"] = lines[-1]
        self._loop.call_soon_threadsafe(entry.events.put_nowait, doc)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except ServeError as error:
                await self._respond(writer, 400, {"error": str(error)})
                return
            if method == "POST" and path == "/submit":
                await self._handle_submit(writer, headers, body)
            elif method == "GET" and path == "/stats":
                await self._respond(writer, 200, self.stats())
            elif method == "GET" and path == "/healthz":
                await self._respond(writer, 200,
                                    {"ok": True, "closing": self._closing})
            elif path in ("/submit", "/stats", "/healthz"):
                await self._respond(writer, 405,
                                    {"error": f"{method} not allowed"})
            else:
                await self._respond(writer, 404,
                                    {"error": f"no route {path}"})
        except (ConnectionError, asyncio.IncompleteReadError, TimeoutError):
            pass  # client went away mid-exchange; the dispatcher owns state
        finally:
            if task is not None:
                self._handlers.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader) -> tuple[str, str, dict, bytes]:
        try:
            line = await asyncio.wait_for(reader.readline(), 30.0)
            parts = line.decode("latin-1").split()
            if len(parts) != 3:
                raise ServeError(f"malformed request line {line!r}")
            method, target = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            for _ in range(100):
                raw = await asyncio.wait_for(reader.readline(), 30.0)
                text = raw.decode("latin-1").strip()
                if not text:
                    break
                name, _, value = text.partition(":")
                headers[name.strip().lower()] = value.strip()
            else:
                raise ServeError("too many headers")
            length = int(headers.get("content-length", "0") or 0)
            if length > MAX_BODY_BYTES:
                raise ServeError(f"body of {length} bytes exceeds the "
                                 f"{MAX_BODY_BYTES} byte limit")
            body = await reader.readexactly(length) if length else b""
            return method, target.split("?", 1)[0], headers, body
        except (ValueError, asyncio.IncompleteReadError,
                asyncio.TimeoutError) as error:
            raise ServeError(f"unreadable request: {error}")

    async def _respond(self, writer, status: int, document: dict,
                       extra_headers: dict[str, str] | None = None) -> None:
        body = json.dumps(document, sort_keys=True).encode() + b"\n"
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    async def _begin_stream(self, writer) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()

    async def _write_event(self, writer, document: dict) -> None:
        writer.write(encode_event(document))
        await writer.drain()

    # ------------------------------------------------------------------
    # /submit
    # ------------------------------------------------------------------
    def _retry_after(self, cold_jobs: int) -> int:
        """Seconds until the queue has plausibly drained enough."""
        backlog = self._queued_jobs + cold_jobs
        seconds = backlog * self._avg_job_seconds \
            / max(1, self.config.n_workers)
        return max(1, min(60, round(seconds)))

    async def _reject(self, writer, status: int, message: str,
                      retry_after: int | None) -> None:
        self.metrics.counter("serve.requests", status="rejected").inc()
        document: dict = {"error": message}
        headers = {}
        if retry_after is not None:
            document["retry_after"] = retry_after
            headers["Retry-After"] = str(retry_after)
        await self._respond(writer, status, document, headers)

    def _probe_cache(self, specs: list[JobSpec]) -> tuple[
            list[tuple[int, JobResult]], list[tuple[int, JobSpec]]]:
        """Split *specs* into warm (cached) and cold.

        Each probe is a blocking disk read and a sweep can carry
        thousands of specs, so callers run this in an executor rather
        than on the event loop.
        """
        warm: list[tuple[int, JobResult]] = []
        cold: list[tuple[int, JobSpec]] = []
        for index, spec in enumerate(specs):
            entry = self.cache.get(spec) if self.cache is not None else None
            if entry is not None:
                meta = entry.get("meta", {})
                warm.append((index, JobResult(
                    spec, value=entry.get("result"), cached=True,
                    elapsed=float(meta.get("elapsed_seconds", 0.0)))))
            else:
                cold.append((index, spec))
        return warm, cold

    async def _handle_submit(self, writer, headers: dict,
                             body: bytes) -> None:
        assert self._loop is not None and self._queue is not None
        started = time.perf_counter()
        if self._closing:
            await self._reject(writer, 503, "server is shutting down", None)
            return
        try:
            specs = shard_request(json.loads(body.decode() or "null"))
        except (ServeError, UnicodeDecodeError,
                json.JSONDecodeError) as error:
            self.metrics.counter("serve.requests", status="bad_request").inc()
            await self._respond(writer, 400, {"error": str(error)})
            return

        client = headers.get("x-client-id") or "anonymous"
        # Cheap per-client check before anything costly: rejected
        # requests must not pay the disk probes below (or skew the
        # hit/miss telemetry).
        if self._active_clients.get(client, 0) >= self.config.per_client:
            await self._reject(
                writer, 429,
                f"client {client!r} already has "
                f"{self.config.per_client} open requests",
                self._retry_after(0))
            return
        # Hold the client slot across the probe (which yields) so one
        # client cannot overshoot its cap with concurrent probes.
        self._active_clients[client] = self._active_clients.get(client, 0) + 1
        try:
            # Warm probe off the loop thread, so a large sweep cannot
            # stall other connections. Cache hits bypass queue and
            # admission entirely: a hot catalog cannot be load-shed.
            if self.cache is not None:
                warm, cold = await self._loop.run_in_executor(
                    None, self._probe_cache, specs)
            else:
                warm, cold = [], list(enumerate(specs))
            if cold and self._queued_jobs + len(cold) \
                    > self.config.queue_limit:
                await self._reject(
                    writer, 429,
                    f"job queue full ({self._queued_jobs} queued, "
                    f"limit {self.config.queue_limit})",
                    self._retry_after(len(cold)))
                return
            # Admitted: only now do the probe outcomes count, so the
            # cache-hit-rate telemetry reflects served traffic.
            self.metrics.counter("serve.jobs", outcome="hit").inc(len(warm))
            self.metrics.counter("serve.jobs", outcome="miss").inc(len(cold))
            await self._stream_submit(writer, specs, warm, cold, started)
        finally:
            remaining = self._active_clients.get(client, 1) - 1
            if remaining <= 0:
                self._active_clients.pop(client, None)
            else:
                self._active_clients[client] = remaining

    async def _stream_submit(self, writer, specs: list[JobSpec],
                             warm: list[tuple[int, JobResult]],
                             cold: list[tuple[int, JobSpec]],
                             started: float) -> None:
        assert self._loop is not None and self._queue is not None
        self._next_request += 1
        request_id = f"r{self._next_request}"
        self._active_requests += 1
        self._queued_jobs += len(cold)
        self.metrics.gauge("serve.queue_depth").set(self._queued_jobs)
        events: asyncio.Queue[dict] = asyncio.Queue()
        pending: dict[int, asyncio.Future] = {}
        gather: asyncio.Future | None = None
        enqueued = 0
        followed = 0
        try:
            await self._begin_stream(writer)
            await self._write_event(writer, event(
                "accepted", request_id=request_id, jobs=len(specs),
                warm=len(warm), cold=len(cold)))
            for index, result in warm:
                await self._write_event(writer, event("hit", index=index))
                await self._write_event(writer,
                                        result_document(index, result))
            for index, spec in cold:
                fingerprint = spec.fingerprint()
                shared = self._inflight.get(fingerprint)
                if shared is not None and not shared.done():
                    # Another request is already running this exact
                    # spec: follow its future. The follower holds no
                    # queue slot, so release the reservation taken for
                    # it above.
                    pending[index] = shared
                    followed += 1
                    self._queued_jobs -= 1
                    self.metrics.counter("serve.jobs",
                                         outcome="dedup").inc()
                    await self._write_event(writer,
                                            event("dedup", index=index))
                    continue
                future = self._loop.create_future()
                pending[index] = future
                if self._closing:
                    # stop() slipped in while the warm results were
                    # streaming; the dispatcher is draining past its
                    # sentinel, so fail the job here instead of
                    # stranding it on the queue.
                    future.set_result(JobResult(
                        spec, error="server is shutting down"))
                else:
                    self._inflight[fingerprint] = future
                    future.add_done_callback(
                        lambda done, fp=fingerprint:
                        self._release_inflight(fp, done))
                    await self._queue.put(
                        _Entry(spec, index, events, future))
                    enqueued += 1
            if pending:
                gather = asyncio.gather(*pending.values())
                while not (gather.done() and events.empty()):
                    try:
                        doc = await asyncio.wait_for(events.get(), 0.05)
                    except asyncio.TimeoutError:
                        continue
                    await self._write_event(writer, doc)
                for index in sorted(pending):
                    await self._write_event(
                        writer, result_document(index,
                                                pending[index].result()))
            outcomes = [result for _, result in warm] \
                + [pending[index].result() for index in sorted(pending)]
            failed = sum(1 for result in outcomes if not result.ok)
            elapsed = time.perf_counter() - started
            await self._write_event(writer, event(
                "complete", request_id=request_id,
                ok=len(outcomes) - failed, failed=failed,
                elapsed_seconds=round(elapsed, 6)))
            self.metrics.counter(
                "serve.requests",
                status="ok" if failed == 0 else "failed").inc()
            self.metrics.histogram("serve.latency_seconds",
                                   path="submit").observe(elapsed)
        finally:
            if gather is not None and not gather.done():
                gather.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await gather
            # Cold jobs that never reached the dispatcher (client
            # vanished before the enqueue loop, or shutdown) still
            # hold queue reservations; only _run_batch releases the
            # enqueued ones, so release the remainder here.
            stranded = len(cold) - enqueued - followed
            if stranded:
                self._queued_jobs -= stranded
                self.metrics.gauge("serve.queue_depth").set(
                    self._queued_jobs)
            self._active_requests -= 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``GET /stats`` document (also handy in-process)."""
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "uptime_seconds": round(
                    time.monotonic() - self._started_mono, 3)
                    if self._started_mono else 0.0,
                "closing": self._closing,
                "active_requests": self._active_requests,
                "queued_jobs": self._queued_jobs,
                "workers": self.config.n_workers,
            },
            "admission": {
                "queue_limit": self.config.queue_limit,
                "per_client": self.config.per_client,
                "batch_window": self.config.batch_window,
                "batch_max": self.config.batch_max,
            },
            "cache": stats_document(self.cache)
                if self.cache is not None else None,
            "jobs": dict(self.runner.stats),
            "metrics": self.metrics.snapshot(),
        }


@contextlib.contextmanager
def serve_in_thread(config: ServeConfig | None = None):
    """A running :class:`SimServer` on a background event loop.

    The tests and the load-test harness use this to run server and
    clients in one process::

        with serve_in_thread(ServeConfig(port=0, n_workers=1)) as server:
            client = ServeClient(f"http://{server.host}:{server.port}")
            ...

    ``port=0`` binds an ephemeral port; the bound address is on the
    yielded server. Exiting the context performs the full graceful
    shutdown (drain, join workers, close the loop).
    """
    server = SimServer(config or ServeConfig(port=0))
    loop = asyncio.new_event_loop()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=_run, name="serve-loop", daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(30.0)
        yield server
    finally:
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(60.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10.0)
        if not thread.is_alive():
            loop.close()
