"""Simulation-as-a-service: the multi-tenant front door to the pool.

The paper's cellular-computing pitch only pays off when many
experiments can be driven against the simulated chip cheaply; this
package is the serving layer that makes the PR 3 job pool and
content-addressed result cache answer network clients at scale:

* :mod:`repro.serve.protocol` — the wire contract: JobSpec/sweep
  request documents, server-side sweep sharding, NDJSON event frames;
* :mod:`repro.serve.server` — :class:`SimServer`, the asyncio server:
  warm-cache short-circuit, cross-client batching into pool
  submissions, bounded-queue + per-client admission control with
  ``Retry-After`` load shedding, telemetry, graceful drain;
* :mod:`repro.serve.client` — :class:`ServeClient`, a thin blocking
  stdlib client with polite retry;
* ``python -m repro.serve`` — the server CLI.

Consumers: ``python -m repro.experiments run all --serve URL`` executes
experiments remotely, and ``benchmarks/bench_serve.py`` is the
synthetic load-test harness that measures throughput, cache hit rate,
and p99 latency under growing client concurrency. See
``docs/serving.md``.
"""

from repro.errors import ServeError
from repro.serve.client import Rejected, ServeClient
from repro.serve.protocol import shard_request
from repro.serve.server import ServeConfig, SimServer, serve_in_thread

__all__ = [
    "Rejected",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "SimServer",
    "serve_in_thread",
    "shard_request",
]
