"""Architecture exploration: the sweep-able chip generator.

The paper argues a design-space position — many simple multithreaded
thread units per quad beat fewer complex cores for cellular workloads —
but evaluates one fixed shape. This package turns the simulator into an
exploration tool: :class:`ChipSpec` parameterizes the family's five
structural knobs and derives a buildable
:class:`~repro.core.chip.Chip`, and :func:`sweep` enumerates grids of
shapes for the experiment families (``saturation``, ``bandwidth``,
``contention`` in :mod:`repro.experiments`) to fan through the jobs
pool. See ``docs/exploration.md``.
"""

from repro.explore.chipspec import (
    BANK_KB,
    MAX_BANKS,
    MEM_SWITCH_LATENCY,
    ChipSpec,
    sweep,
)

__all__ = [
    "BANK_KB",
    "MAX_BANKS",
    "MEM_SWITCH_LATENCY",
    "ChipSpec",
    "sweep",
]
