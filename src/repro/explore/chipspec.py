"""Sweep-able chip generator: :class:`ChipSpec`.

The paper evaluates one design point of a family — 128 thread units in
32 quads, 16 KB 8-way caches, 16 memory banks — and stresses that "the
architecture itself does not specify the number of components at each
level of the hierarchy". :class:`ChipSpec` is the exploration handle for
that family: five orthogonal knobs (thread units per quad, quad count,
data-cache size and associativity, memory-bank count, and the one-way
memory-switch traversal latency) that deterministically derive a full
:class:`~repro.config.ChipConfig` and build a runnable
:class:`~repro.core.chip.Chip`.

The derivation is *anchored* at the paper: ``ChipSpec()`` (all defaults)
produces a configuration equal field-for-field to
``ChipConfig.paper()``, so the chip it builds is byte-identical to
``Chip()`` — a differential test pins this. Every knob moves exactly the
derived fields it names and nothing else:

* ``tus_per_quad`` / ``n_quads`` set the processing hierarchy
  (``n_threads = tus_per_quad * n_quads``); an odd quad count drops to
  one quad per instruction cache, since the paper's pairing needs an
  even number of quads;
* ``dcache_kb`` / ``dcache_ways`` set the cache geometry, with the
  scratchpad-partition granularity re-derived as one way
  (``sets x line``) so any legal geometry stays partitionable;
* ``n_banks`` sets the embedded-DRAM bank count (512 KB each, as in the
  paper — total memory scales with the knob);
* ``mem_switch_latency`` adjusts the Table-2 *miss* rows: a miss
  crosses the memory switch twice (cache -> bank -> cache), so the
  latency column of both miss rows moves by ``2 x (s - 9)`` cycles.
  Table 2's published 24/36-cycle misses correspond to the default
  one-way traversal of :data:`MEM_SWITCH_LATENCY` = 9 cycles.

Specs are frozen, hashable, validated at construction
(:class:`~repro.errors.ExploreError` on bad geometry), and round-trip
through JSON via :mod:`repro.configio` — which is what lets the
experiment families key the jobs-pool result cache on the chip shape.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable, Mapping

from repro.config import ChipConfig, LatencyTable
from repro.errors import ExploreError

#: The one-way memory-switch traversal implied by Table 2: the miss
#: latency rows exceed their hit counterparts by a bank access plus two
#: switch crossings, and 9 cycles per crossing reproduces the published
#: 24-cycle local (6 + 2x9) and 36-cycle remote miss latencies.
MEM_SWITCH_LATENCY = 9

#: Embedded-DRAM bank size is fixed across the family (the paper's
#: companion report varies the *count*, not the bank).
BANK_KB = 512

#: The 24-bit physical address space bounds total memory at 16 MB.
MAX_BANKS = 32


@dataclass(frozen=True)
class ChipSpec:
    """One point of the Cyclops architecture family, as five knobs.

    The defaults are the paper's design point; :meth:`to_config` derives
    the full :class:`~repro.config.ChipConfig` and :meth:`build` returns
    a runnable chip. Use :func:`sweep` to enumerate a grid of specs.
    """

    #: Thread units sharing one FPU and one data cache.
    tus_per_quad: int = 4
    #: Number of quads (the paper: 32 -> 128 thread units).
    n_quads: int = 32
    #: Per-quad data-cache capacity in KB.
    dcache_kb: int = 16
    #: Data-cache associativity (ways).
    dcache_ways: int = 8
    #: Embedded-DRAM banks of 512 KB each.
    n_banks: int = 16
    #: One-way memory-switch traversal in cycles (Table 2 implies 9).
    mem_switch_latency: int = MEM_SWITCH_LATENCY

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`~repro.errors.ExploreError` on bad geometry."""
        if self.tus_per_quad < 1:
            raise ExploreError(
                f"tus_per_quad must be >= 1, got {self.tus_per_quad}")
        if self.n_quads < 1:
            raise ExploreError(f"n_quads must be >= 1, got {self.n_quads}")
        if self.dcache_kb < 1:
            raise ExploreError(
                f"dcache_kb must be >= 1, got {self.dcache_kb}")
        if self.dcache_ways < 1:
            raise ExploreError(
                f"dcache_ways must be >= 1, got {self.dcache_ways}")
        line = ChipConfig.paper().dcache_line_bytes
        cache_bytes = self.dcache_kb * 1024
        if cache_bytes % (line * self.dcache_ways):
            raise ExploreError(
                f"a {self.dcache_kb} KB cache does not divide into "
                f"{self.dcache_ways} ways of {line} B lines")
        sets = cache_bytes // (line * self.dcache_ways)
        if sets & (sets - 1):
            raise ExploreError(
                f"{self.dcache_kb} KB / {self.dcache_ways}-way gives "
                f"{sets} sets; the set count must be a power of two")
        if self.n_banks < 1 or self.n_banks & (self.n_banks - 1):
            raise ExploreError(
                f"n_banks must be a positive power of two, got "
                f"{self.n_banks}")
        if self.n_banks > MAX_BANKS:
            raise ExploreError(
                f"{self.n_banks} banks x {BANK_KB} KB exceeds the 24-bit "
                f"physical address space (max {MAX_BANKS})")
        if self.mem_switch_latency < 0:
            raise ExploreError(
                f"mem_switch_latency must be >= 0, got "
                f"{self.mem_switch_latency}")

    # ------------------------------------------------------------------
    # Derived geometry (pre-build conveniences)
    # ------------------------------------------------------------------
    @property
    def n_threads(self) -> int:
        """Total thread units on the chip."""
        return self.tus_per_quad * self.n_quads

    @property
    def memory_kb(self) -> int:
        """Total embedded DRAM in KB."""
        return self.n_banks * BANK_KB

    def describe(self) -> str:
        """Compact human label, e.g. ``4t x 32q, 16KB/8w, 16 banks, s=9``."""
        return (f"{self.tus_per_quad}t x {self.n_quads}q, "
                f"{self.dcache_kb}KB/{self.dcache_ways}w, "
                f"{self.n_banks} banks, s={self.mem_switch_latency}")

    # ------------------------------------------------------------------
    # Derivation: spec -> config -> chip
    # ------------------------------------------------------------------
    def latency_table(self) -> LatencyTable:
        """Table 2 adjusted for this spec's memory-switch latency.

        A miss traverses the memory switch twice, so both miss rows'
        latency columns move by ``2 x (s - 9)``; every other row is
        switch-independent (Table 2's hit latencies are cache-switch
        paths). The default spec returns the published table unchanged.
        """
        base = LatencyTable()
        delta = 2 * (self.mem_switch_latency - MEM_SWITCH_LATENCY)
        if delta == 0:
            return base
        return replace(
            base,
            mem_local_miss=(base.mem_local_miss[0],
                            base.mem_local_miss[1] + delta),
            mem_remote_miss=(base.mem_remote_miss[0],
                             base.mem_remote_miss[1] + delta),
        )

    def to_config(self) -> ChipConfig:
        """Derive the full chip configuration for this spec."""
        base = ChipConfig.paper()
        cache_bytes = self.dcache_kb * 1024
        sets = cache_bytes // (base.dcache_line_bytes * self.dcache_ways)
        return replace(
            base,
            n_threads=self.n_threads,
            threads_per_quad=self.tus_per_quad,
            quads_per_icache=2 if self.n_quads % 2 == 0 else 1,
            dcache_bytes=cache_bytes,
            dcache_ways=self.dcache_ways,
            dcache_partition_bytes=sets * base.dcache_line_bytes,
            n_memory_banks=self.n_banks,
            bank_bytes=BANK_KB * 1024,
            latency=self.latency_table(),
        )

    def build(self, **chip_kwargs: Any):
        """Instantiate a :class:`~repro.core.chip.Chip` for this spec.

        Keyword arguments pass straight through to the ``Chip``
        constructor (``tracer=``, ``sanitize=``, ...).
        """
        from repro.core.chip import Chip

        return Chip(self.to_config(), **chip_kwargs)

    # ------------------------------------------------------------------
    # Serialization (see also repro.configio.spec_to_json & friends)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, int]:
        """JSON-safe dictionary: one key per knob."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChipSpec":
        """Rebuild (and re-validate) a spec; unknown keys fail loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ExploreError(f"unknown chip-spec keys: {sorted(unknown)}")
        try:
            kwargs = {key: int(value) for key, value in data.items()}
        except (TypeError, ValueError) as error:
            raise ExploreError(f"non-integer chip-spec value: {error}") \
                from None
        return cls(**kwargs)

    @classmethod
    def paper(cls) -> "ChipSpec":
        """The paper's design point (all defaults, made explicit)."""
        return cls()

    @classmethod
    def small(cls, n_quads: int = 4, n_banks: int = 4) -> "ChipSpec":
        """A reduced chip for fast tests and quick experiment modes."""
        return cls(n_quads=n_quads, n_banks=n_banks)


def sweep(**axes: Iterable[Any]) -> list[ChipSpec]:
    """Cartesian-product grid of specs over the named knobs.

    Each keyword names a :class:`ChipSpec` field and gives the values to
    sweep; unswept knobs stay at the paper's defaults. The grid is
    enumerated in sorted-key order with the last axis fastest, so the
    result is deterministic regardless of call-site ordering::

        sweep(n_banks=[4, 8, 16], tus_per_quad=[2, 4])   # 6 specs

    Invalid grid points raise :class:`~repro.errors.ExploreError` as
    each spec constructs, naming the offending combination.
    """
    known = {f.name for f in fields(ChipSpec)}
    unknown = set(axes) - known
    if unknown:
        raise ExploreError(f"unknown sweep axes: {sorted(unknown)}")
    names = sorted(axes)
    specs = []
    for values in itertools.product(*(list(axes[name]) for name in names)):
        specs.append(ChipSpec(**dict(zip(names, values))))
    return specs
