"""Configuration serialization: ChipConfig and ChipSpec to/from JSON.

Experiment reproducibility plumbing: a configuration can be captured
next to its results and reloaded bit-exactly. Latency rows serialize as
two-element lists; unknown keys are rejected loudly (a config file from
a different library version should fail, not half-apply).

The same contract covers the exploration layer's
:class:`~repro.explore.ChipSpec` (``spec_to_json`` and friends): a
five-knob chip shape serializes to a flat JSON object, reloads
validated, and — because the dictionary form is canonical — doubles as
the cache-key material the experiment families embed in their
:class:`~repro.jobs.spec.JobSpec` payloads.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.config import ChipConfig, LatencyTable
from repro.errors import ConfigError


def config_to_dict(config: ChipConfig) -> dict[str, Any]:
    """A JSON-safe dictionary capturing every field."""
    out: dict[str, Any] = {}
    for field in dataclasses.fields(ChipConfig):
        value = getattr(config, field.name)
        if isinstance(value, LatencyTable):
            out[field.name] = {
                row.name: list(getattr(value, row.name))
                for row in dataclasses.fields(LatencyTable)
            }
        else:
            out[field.name] = value
    return out


def config_from_dict(data: dict[str, Any]) -> ChipConfig:
    """Rebuild a ChipConfig; validates keys and the result."""
    known = {f.name for f in dataclasses.fields(ChipConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"unknown config keys: {sorted(unknown)}")
    kwargs = dict(data)
    if "latency" in kwargs and isinstance(kwargs["latency"], dict):
        latency_fields = {f.name for f in dataclasses.fields(LatencyTable)}
        bad = set(kwargs["latency"]) - latency_fields
        if bad:
            raise ConfigError(f"unknown latency rows: {sorted(bad)}")
        kwargs["latency"] = LatencyTable(**{
            name: tuple(pair) for name, pair in kwargs["latency"].items()
        })
    return ChipConfig(**kwargs)


def config_to_json(config: ChipConfig, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def config_from_json(text: str) -> ChipConfig:
    """Parse a JSON string back into a validated ChipConfig."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigError(f"bad config JSON: {error}") from None
    if not isinstance(data, dict):
        raise ConfigError("config JSON must be an object")
    return config_from_dict(data)


def save_config(config: ChipConfig, path: str) -> None:
    """Write the configuration to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(config_to_json(config))


def load_config(path: str) -> ChipConfig:
    """Read a configuration from a file."""
    with open(path, encoding="utf-8") as handle:
        return config_from_json(handle.read())


# ---------------------------------------------------------------------------
# ChipSpec round trip (the exploration layer's five-knob chip shapes)
# ---------------------------------------------------------------------------
def spec_to_dict(spec) -> dict[str, int]:
    """A JSON-safe dictionary for a :class:`~repro.explore.ChipSpec`."""
    return spec.to_dict()


def spec_from_dict(data: dict[str, Any]):
    """Rebuild a validated :class:`~repro.explore.ChipSpec`."""
    from repro.explore.chipspec import ChipSpec

    return ChipSpec.from_dict(data)


def spec_to_json(spec, indent: int = 2) -> str:
    """Serialize a chip spec to a JSON string."""
    return json.dumps(spec_to_dict(spec), indent=indent, sort_keys=True)


def spec_from_json(text: str):
    """Parse a JSON string back into a validated chip spec."""
    from repro.errors import ExploreError

    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ExploreError(f"bad chip-spec JSON: {error}") from None
    if not isinstance(data, dict):
        raise ExploreError("chip-spec JSON must be an object")
    return spec_from_dict(data)


def save_spec(spec, path: str) -> None:
    """Write a chip spec to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spec_to_json(spec))


def load_spec(path: str):
    """Read a chip spec from a file."""
    with open(path, encoding="utf-8") as handle:
        return spec_from_json(handle.read())
