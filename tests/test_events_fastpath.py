"""EventQueue fast-path unit tests and a reference-model property test.

The run-list fast path must be *observably identical* to a plain
``(time, seq)`` heap: same pop order (FIFO within a tie group), same
lengths, same peek times. The unit tests pin each branch of the fast
path; the Hypothesis test drives random interleavings of push/pop
against the pure-heap reference implementation.
"""

from heapq import heappop, heappush
from itertools import count

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.events import EventQueue, Waiter


class ReferenceQueue:
    """The obviously-correct implementation: one heap, no fast path."""

    def __init__(self) -> None:
        self._heap = []
        self._seq = count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time, payload) -> None:
        heappush(self._heap, (time, next(self._seq), payload))

    def pop(self):
        time, _, payload = heappop(self._heap)
        return time, payload

    def peek_time(self):
        if not self._heap:
            raise IndexError("peek into an empty event queue")
        return self._heap[0][0]


# ---------------------------------------------------------------------------
# Unit tests: one per fast-path branch
# ---------------------------------------------------------------------------
def test_fifo_tie_breaking():
    queue = EventQueue()
    for i in range(5):
        queue.push(7, f"p{i}")
    assert [queue.pop() for _ in range(5)] == \
        [(7, f"p{i}") for i in range(5)]


def test_tie_group_drains_into_run_list():
    queue = EventQueue()
    for i in range(4):
        queue.push(3, i)
    queue.push(9, "later")
    # First pop reveals the tie group; the rest must come from the run
    # list in FIFO order, with next_time tracking correctly throughout.
    assert queue.pop() == (3, 0)
    assert queue.peek_time() == 3
    assert queue.pop() == (3, 1)
    assert queue.pop() == (3, 2)
    assert queue.pop() == (3, 3)
    assert queue.peek_time() == 9
    assert queue.pop() == (9, "later")
    assert len(queue) == 0


def test_same_cycle_push_appends_behind_run_list():
    queue = EventQueue()
    queue.push(5, "a")
    queue.push(5, "b")
    queue.push(5, "c")
    assert queue.pop() == (5, "a")  # drains b, c into the run list
    queue.push(5, "d")  # same-cycle push: behind the existing tie group
    assert queue.pop() == (5, "b")
    assert queue.pop() == (5, "c")
    assert queue.pop() == (5, "d")


def test_push_into_run_list_past_serves_heap_first():
    queue = EventQueue()
    queue.push(10, "x")
    queue.push(10, "y")
    assert queue.pop() == (10, "x")  # "y" now sits in the run list
    queue.push(4, "early")  # earlier than the active run list
    assert queue.peek_time() == 4
    assert queue.pop() == (4, "early")
    assert queue.peek_time() == 10
    assert queue.pop() == (10, "y")


def test_len_bool_and_empty_peek():
    queue = EventQueue()
    assert len(queue) == 0 and not queue
    with pytest.raises(IndexError):
        queue.peek_time()
    queue.push(1, "a")
    assert len(queue) == 1 and queue
    queue.pop()
    with pytest.raises(IndexError):
        queue.peek_time()


def test_next_time_tracks_earliest_push():
    queue = EventQueue()
    queue.push(8, "a")
    assert queue.peek_time() == 8
    queue.push(3, "b")
    assert queue.peek_time() == 3
    queue.push(5, "c")
    assert queue.peek_time() == 3
    assert [queue.pop() for _ in range(3)] == \
        [(3, "b"), (5, "c"), (8, "a")]


def test_drain_yields_sorted_fifo_order():
    queue = EventQueue()
    pushes = [(4, "a"), (1, "b"), (4, "c"), (1, "d"), (2, "e")]
    for time, payload in pushes:
        queue.push(time, payload)
    assert list(queue.drain()) == \
        [(1, "b"), (1, "d"), (2, "e"), (4, "a"), (4, "c")]


# ---------------------------------------------------------------------------
# Property test: any interleaving matches the reference heap
# ---------------------------------------------------------------------------
#: Ops: push at a small time (ties are the interesting case), or pop.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(min_value=0, max_value=8)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_matches_reference_heap(ops):
    fast = EventQueue()
    reference = ReferenceQueue()
    for serial, (op, time) in enumerate(ops):
        if op == "push":
            fast.push(time, serial)
            reference.push(time, serial)
        elif len(reference):
            assert fast.pop() == reference.pop()
        assert len(fast) == len(reference)
        if len(reference):
            assert fast.peek_time() == reference.peek_time()


@settings(max_examples=50, deadline=None)
@given(ops=_OPS)
def test_scheduler_like_interleaving_matches_reference(ops):
    """Monotone-time interleavings (what the scheduler actually does).

    Pushes land at ``now + delta`` for the last popped ``now``, so the
    run-list is hot: most pushes hit the same-cycle append path.
    """
    fast = EventQueue()
    reference = ReferenceQueue()
    now = 0
    for serial, (op, delta) in enumerate(ops):
        if op == "push":
            fast.push(now + delta, serial)
            reference.push(now + delta, serial)
        elif len(reference):
            expected = reference.pop()
            assert fast.pop() == expected
            now = expected[0]
        assert len(fast) == len(reference)


# ---------------------------------------------------------------------------
# Waiter
# ---------------------------------------------------------------------------
def test_waiter_fifo():
    waiter = Waiter()
    for i in range(3):
        waiter.park(i)
    assert len(waiter) == 3
    assert waiter.wake_one() == 0
    assert waiter.wake_all() == [1, 2]
    assert waiter.wake_one() is None
    assert len(waiter) == 0
