"""Cross-validation of the two execution layers via ISA-level STREAM."""

import pytest

from repro.core.chip import Chip
from repro.errors import WorkloadError
from repro.isa import Interpreter
from repro.isa.kernels import stream_kernel_program, stream_register_setup
from repro.workloads.stream import StreamParams, run_stream

N = 256
SRC, SRC2, DST = 0x10000, 0x20000, 0x30000


def run_isa_stream(kernel: str, unroll: int = 1, tid: int = 0,
                   ig_byte=None):
    from repro.memory.address import make_effective
    from repro.memory.interest_groups import IG_ALL

    chip = Chip()
    backing = chip.memory.backing
    backing.f64_view(SRC, N)[:] = 1.0
    backing.f64_view(SRC2, N)[:] = 3.0
    program = stream_kernel_program(kernel, unroll)
    ig = IG_ALL if ig_byte is None else ig_byte
    init_regs, init_doubles = stream_register_setup(
        kernel, make_effective(SRC, ig), make_effective(SRC2, ig),
        make_effective(DST, ig), N)
    interp = Interpreter(chip, model_fetch=False)
    state = interp.add_thread(tid, program, init_regs, init_doubles)
    cycles = interp.run()
    return chip, state, cycles


class TestGeneratedKernels:
    @pytest.mark.parametrize("kernel,expected", [
        ("copy", 1.0),
        ("scale", 3.0),       # s * src where s=3, src=1
        ("add", 4.0),         # 1 + 3
        ("triad", 1.0 + 9.0),  # src + s*src2 = 1 + 3*3
    ])
    def test_functional_result(self, kernel, expected):
        chip, _, _ = run_isa_stream(kernel)
        out = chip.memory.backing.f64_view(DST, N)
        assert (out == expected).all()

    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_unrolled_results_identical(self, unroll):
        chip, _, _ = run_isa_stream("triad", unroll)
        out = chip.memory.backing.f64_view(DST, N)
        assert (out == 10.0).all()

    def test_unrolling_reduces_cycles(self):
        _, _, plain = run_isa_stream("copy", 1)
        _, _, unrolled = run_isa_stream("copy", 4)
        assert unrolled < plain * 0.8

    def test_bad_kernel(self):
        with pytest.raises(WorkloadError):
            stream_kernel_program("sum")

    def test_bad_unroll(self):
        with pytest.raises(WorkloadError):
            stream_kernel_program("copy", unroll=9)


class TestLayerCrossValidation:
    """The ISA interpreter and the direct-execution model must agree:
    both charge the same Table 2 machine for the same loop shape."""

    @pytest.mark.parametrize("kernel", ["copy", "triad"])
    def test_cycles_per_element_agree(self, kernel):
        _, _, isa_cycles = run_isa_stream(kernel)
        isa_per_element = isa_cycles / N

        direct = run_stream(StreamParams(
            kernel=kernel, n_elements=N, n_threads=1, warmup=False,
        ))
        direct_per_element = direct.cycles / N
        # The models differ in charged loop overhead (the ISA loop has
        # its literal instruction count); 35% agreement is tight enough
        # to catch any real divergence in the shared timing machinery.
        ratio = isa_per_element / direct_per_element
        assert 0.65 < ratio < 1.35, (isa_per_element, direct_per_element)

    def test_unrolling_gain_agrees(self):
        """Both layers must show a similar unrolling speedup."""
        _, _, isa_1 = run_isa_stream("triad", 1)
        _, _, isa_4 = run_isa_stream("triad", 4)
        isa_gain = isa_1 / isa_4

        direct_1 = run_stream(StreamParams(kernel="triad", n_elements=N,
                                           n_threads=1, warmup=False))
        direct_4 = run_stream(StreamParams(kernel="triad", n_elements=N,
                                           n_threads=1, unroll=4,
                                           warmup=False))
        direct_gain = direct_1.cycles / direct_4.cycles
        assert abs(isa_gain - direct_gain) / direct_gain < 0.5
