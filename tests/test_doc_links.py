"""The documentation link checker, and the docs it guards."""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_doc_links import dead_links, default_paths, main  # noqa: E402


class TestDocLinks:
    def test_shipped_docs_have_no_dead_links(self):
        assert dead_links(default_paths(ROOT)) == []

    def test_index_covers_every_docs_page(self):
        index = (ROOT / "docs" / "README.md").read_text()
        for page in sorted((ROOT / "docs").glob("*.md")):
            if page.name != "README.md":
                assert page.name in index, f"docs/README.md misses {page.name}"

    def test_checker_flags_a_dead_link(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [gone](missing.md) and [ok](page.md)\n"
                        "[web](https://example.com) [anchor](#here)\n")
        dead = dead_links([page])
        assert [(line, target) for _, line, target in dead] \
            == [(1, "missing.md")]

    def test_checker_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.md"
        good.write_text("[self](good.md)\n")
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.md"
        bad.write_text("[gone](nope.md#frag)\n")
        assert main([str(bad)]) == 1
        assert "dead link -> nope.md#frag" in capsys.readouterr().out
