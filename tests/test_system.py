"""Tests for the multi-chip cellular layer: topology, links, messaging,
and the halo-exchange workload."""

import pytest

from repro.config import ChipConfig
from repro.errors import ConfigError, WorkloadError
from repro.system.halo import HaloParams, run_halo
from repro.system.links import HOP_LATENCY, LinkFabric
from repro.system.multichip import MultiChipSystem
from repro.system.topology import Topology, TorusTopology


class TestTopology:
    def test_index_coord_roundtrip(self):
        topo = Topology(3, 2, 2)
        for chip_id in range(topo.n_chips):
            assert topo.index(topo.coord(chip_id)) == chip_id

    def test_mesh_neighbours_truncate(self):
        topo = Topology(2, 2, 1)
        corner = topo.neighbours((0, 0, 0))
        assert set(corner) == {"+x", "+y"}

    def test_interior_has_six_neighbours(self):
        topo = Topology(3, 3, 3)
        assert len(topo.neighbours((1, 1, 1))) == 6

    def test_dimension_ordered_route(self):
        topo = Topology(4, 4, 4)
        hops = topo.route((0, 0, 0), (2, 1, 3))
        assert len(hops) == 6
        directions = [d for _, d in hops]
        assert directions == ["+x", "+x", "+y", "+z", "+z", "+z"]

    def test_route_to_self_is_empty(self):
        topo = Topology(2, 2)
        assert topo.route((1, 1, 0), (1, 1, 0)) == []

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            Topology(2, 2).index((2, 0, 0))
        with pytest.raises(ConfigError):
            Topology(0, 1)

    def test_torus_wraps(self):
        topo = TorusTopology(4, 1, 1)
        assert topo.step((3, 0, 0), "+x") == (0, 0, 0)

    def test_torus_takes_short_way(self):
        topo = TorusTopology(8, 1, 1)
        hops = topo.route((0, 0, 0), (6, 0, 0))
        assert len(hops) == 2  # wrap backwards, not 6 forward
        assert all(d == "-x" for _, d in hops)


class TestLinkFabric:
    def make(self, topo=None):
        return LinkFabric(topo or Topology(2, 1, 1), ChipConfig.paper())

    def test_link_bandwidth_is_2_bytes_per_cycle(self):
        fabric = self.make()
        link = fabric.link((0, 0, 0), "+x")
        arrival = link.transfer(0, 2048)
        assert arrival == 1024 + HOP_LATENCY

    def test_messages_serialize_on_a_link(self):
        fabric = self.make()
        first = fabric.send(0, (0, 0, 0), (1, 0, 0), 1024)
        second = fabric.send(0, (0, 0, 0), (1, 0, 0), 1024)
        assert second > first

    def test_multi_hop_accumulates(self):
        fabric = self.make(Topology(4, 1, 1))
        one = fabric.send(0, (0, 0, 0), (1, 0, 0), 64)
        three = fabric.send(0, (0, 0, 0), (3, 0, 0), 64)
        assert three > one * 2

    def test_missing_link(self):
        fabric = self.make()
        with pytest.raises(ConfigError):
            fabric.link((0, 0, 0), "-x")

    def test_peak_io_is_papers_12_gb_s(self):
        fabric = self.make()
        assert fabric.peak_chip_io_bytes_per_second() == pytest.approx(12e9)

    def test_traffic_counter(self):
        fabric = self.make()
        fabric.send(0, (0, 0, 0), (1, 0, 0), 100)
        assert fabric.total_bytes == 100

    def test_unknown_routing_rejected(self):
        with pytest.raises(ConfigError):
            LinkFabric(Topology(2, 1, 1), ChipConfig.paper(),
                       routing="quantum")


class TestCutThroughRouting:
    def _latency(self, routing: str, hops: int, n_bytes: int) -> int:
        fabric = LinkFabric(Topology(hops + 1, 1, 1), ChipConfig.paper(),
                            routing=routing)
        return fabric.send(0, (0, 0, 0), (hops, 0, 0), n_bytes)

    def test_single_hop_equal(self):
        saf = self._latency("store_and_forward", 1, 1024)
        ct = self._latency("cut_through", 1, 1024)
        assert saf == ct

    def test_multi_hop_cut_through_wins(self):
        """Wormhole pays serialization once, not per hop."""
        saf = self._latency("store_and_forward", 4, 2048)
        ct = self._latency("cut_through", 4, 2048)
        assert ct < saf
        # SAF ~ 4x(1024+10); CT ~ 1024 + 4x10 + pipeline slack.
        assert ct < saf / 2

    def test_cut_through_occupies_every_link(self):
        fabric = LinkFabric(Topology(3, 1, 1), ChipConfig.paper(),
                            routing="cut_through")
        fabric.send(0, (0, 0, 0), (2, 0, 0), 512)
        assert fabric.link((0, 0, 0), "+x").busy_cycles == 256
        assert fabric.link((1, 0, 0), "+x").busy_cycles == 256

    def test_halo_verifies_under_cut_through(self):
        from repro.system.halo import HaloParams, run_halo
        # run_halo builds its own system; exercise cut-through at the
        # message level instead.
        system = MultiChipSystem(Topology(2, 1, 1), routing="cut_through")
        a, b = (0, 0, 0), (1, 0, 0)
        src = system.kernel_at(a).heap.alloc(64)
        dst = system.kernel_at(b).heap.alloc(64)
        system.chip_at(a).memory.backing.store_u32(src, 99)

        def sender(ctx):
            yield from system.send(ctx, b, src, 4)

        def receiver(ctx):
            yield from system.receive(ctx, dst)
            return system.chip_at(b).memory.backing.load_u32(dst)

        system.spawn_on(a, sender)
        thread = system.spawn_on(b, receiver)
        system.run()
        assert thread.result == 99


class TestMultiChipSystem:
    def test_cells_share_one_clock(self):
        system = MultiChipSystem(Topology(2, 1, 1))
        assert system.kernels[0].scheduler is system.kernels[1].scheduler

    def test_message_roundtrip(self):
        system = MultiChipSystem(Topology(2, 1, 1))
        a, b = (0, 0, 0), (1, 0, 0)
        src_kernel = system.kernel_at(a)
        dst_kernel = system.kernel_at(b)
        src_buf = src_kernel.heap.alloc_f64_array(4)
        dst_buf = dst_kernel.heap.alloc_f64_array(4)
        system.chip_at(a).memory.backing.f64_view(src_buf, 4)[:] = \
            [1, 2, 3, 4]

        def sender(ctx):
            yield from system.send(ctx, b, src_buf, 32)

        def receiver(ctx):
            src, size = yield from system.receive(ctx, dst_buf)
            return src, size, ctx.time

        system.spawn_on(a, sender)
        thread = system.spawn_on(b, receiver)
        system.run()
        src, size, t = thread.result
        assert src == a
        assert size == 32
        assert t >= 16 + HOP_LATENCY  # 32 bytes at 2 B/cycle + hop
        received = system.chip_at(b).memory.backing.f64_view(dst_buf, 4)
        assert list(received) == [1, 2, 3, 4]

    def test_receive_filters_by_source(self):
        system = MultiChipSystem(Topology(3, 1, 1))
        mid = (1, 0, 0)
        left, right = (0, 0, 0), (2, 0, 0)
        kernel = system.kernel_at(mid)
        buf = kernel.heap.alloc(128)

        def send_from(coord, value):
            k = system.kernel_at(coord)
            payload = k.heap.alloc(64)
            system.chip_at(coord).memory.backing.store_u32(payload, value)

            def body(ctx):
                yield from system.send(ctx, mid, payload, 4)

            system.spawn_on(coord, body)

        def receiver(ctx):
            # Ask for the right's message first even if left's lands first.
            yield from system.receive(ctx, buf, from_coord=right)
            first = system.chip_at(mid).memory.backing.load_u32(buf)
            yield from system.receive(ctx, buf + 64, from_coord=left)
            second = system.chip_at(mid).memory.backing.load_u32(buf + 64)
            return first, second

        send_from(left, 111)
        send_from(right, 222)
        thread = system.spawn_on(mid, receiver)
        system.run()
        assert thread.result == (222, 111)


class TestHostLink:
    def test_roundtrip_over_seventh_link(self):
        system = MultiChipSystem(Topology(2, 1, 1))
        coord = (1, 0, 0)
        done = system.host_load(0, coord, 0x1000, b"payload!")
        assert done >= 4 + HOP_LATENCY  # 8 bytes at 2 B/cycle
        arrival, data = system.host_store(done, coord, 0x1000, 8)
        assert data == b"payload!"
        assert arrival > done

    def test_host_links_serialize(self):
        system = MultiChipSystem(Topology(1, 1, 1))
        coord = (0, 0, 0)
        first = system.host_load(0, coord, 0, bytes(2048))
        second = system.host_load(0, coord, 4096, bytes(2048))
        assert second >= first + 1024  # 2048 B at 2 B/cycle each


class TestHaloWorkload:
    @pytest.mark.parametrize("n_chips", [1, 2, 3])
    def test_matches_global_reference(self, n_chips):
        result = run_halo(HaloParams(n_chips=n_chips, band_elements=64,
                                     iterations=2, threads_per_chip=4))
        assert result.verified

    def test_link_traffic_proportional_to_boundaries(self):
        two = run_halo(HaloParams(n_chips=2, band_elements=64,
                                  iterations=2, threads_per_chip=4))
        four = run_halo(HaloParams(n_chips=4, band_elements=64,
                                   iterations=2, threads_per_chip=4))
        assert four.link_bytes == 3 * two.link_bytes  # 3 seams vs 1

    def test_weak_scaling(self):
        """Constant per-cell work: cycles must stay nearly flat."""
        one = run_halo(HaloParams(n_chips=1, band_elements=128,
                                  iterations=2, threads_per_chip=4))
        four = run_halo(HaloParams(n_chips=4, band_elements=128,
                                   iterations=2, threads_per_chip=4))
        assert four.cycles < one.cycles * 1.5

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            HaloParams(n_chips=0)
        with pytest.raises(WorkloadError):
            HaloParams(band_elements=2)
