"""Tests for the out-of-core staging workload."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.outofcore import (
    OutOfCoreParams,
    OutOfCoreResult,
    run_outofcore,
)


class TestParams:
    def test_chunks_must_divide(self):
        with pytest.raises(WorkloadError):
            OutOfCoreParams(total_elements=1000, chunk_elements=384)

    def test_chunks_must_be_dma_blocks(self):
        with pytest.raises(WorkloadError):
            OutOfCoreParams(total_elements=512, chunk_elements=64)

    def test_derived_counts(self):
        params = OutOfCoreParams(total_elements=4096, chunk_elements=1024)
        assert params.n_chunks == 4
        assert params.blocks_per_chunk == 8


class TestRun:
    def test_scales_whole_dataset(self):
        result = run_outofcore(OutOfCoreParams(
            total_elements=2048, chunk_elements=512, n_threads=4,
        ))
        assert result.verified

    def test_dma_traffic_counted(self):
        params = OutOfCoreParams(total_elements=2048, chunk_elements=512,
                                 n_threads=4)
        result = run_outofcore(params)
        # Every chunk moves in and out once.
        assert result.dma_blocks == 2 * params.n_chunks \
            * params.blocks_per_chunk

    def test_single_thread(self):
        result = run_outofcore(OutOfCoreParams(
            total_elements=1024, chunk_elements=512, n_threads=1,
        ))
        assert result.verified

    def test_dataset_larger_than_embedded_memory(self):
        """The point of the feature: 16 MB through an 8 MB chip."""
        result = run_outofcore(OutOfCoreParams(
            total_elements=2 * 1024 * 1024,  # 16 MB of doubles
            chunk_elements=64 * 1024,
            n_threads=16,
            verify=False,  # full verify is slow; spot-check instead
        ))
        assert result.dma_blocks == 2 * 32 * 512

    def test_dma_time_visible(self):
        """More chunks of the same total = more DMA serialization."""
        few = run_outofcore(OutOfCoreParams(
            total_elements=2048, chunk_elements=1024, n_threads=4,
            verify=False,
        ))
        many = run_outofcore(OutOfCoreParams(
            total_elements=2048, chunk_elements=256, n_threads=4,
            verify=False,
        ))
        # Same data volume; the DMA cost dominates and is equal, but the
        # extra per-chunk barriers and flushes make many chunks slower.
        assert many.cycles > few.cycles
