"""Tests for the Splash-2 FFT workload (Figure 7's vehicle)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.fft import FFTParams, run_fft


class TestParamConstraints:
    """The paper's stated FFT constraints."""

    def test_power_of_two_threads(self):
        with pytest.raises(WorkloadError):
            FFTParams(n_points=256, n_threads=3)

    def test_points_per_processor_at_least_sqrt_n(self):
        """'the number of points per processor [must] be >= sqrt(n)':
        256 points -> at most 16 threads."""
        FFTParams(n_points=256, n_threads=16)  # allowed
        with pytest.raises(WorkloadError):
            FFTParams(n_points=256, n_threads=32)

    def test_perfect_square(self):
        with pytest.raises(WorkloadError):
            FFTParams(n_points=512, n_threads=2)

    def test_bad_barrier(self):
        with pytest.raises(WorkloadError):
            FFTParams(barrier="magic")


class TestCorrectness:
    @pytest.mark.parametrize("n_points", [16, 64, 256])
    def test_matches_numpy_single_thread(self, n_points):
        result = run_fft(FFTParams(n_points=n_points, n_threads=1))
        assert result.verified

    @pytest.mark.parametrize("n_threads", [2, 4, 8, 16])
    def test_matches_numpy_parallel(self, n_threads):
        result = run_fft(FFTParams(n_points=256, n_threads=n_threads))
        assert result.verified

    def test_sw_barrier_also_correct(self):
        result = run_fft(FFTParams(n_points=256, n_threads=8, barrier="sw"))
        assert result.verified

    def test_custom_input(self):
        values = np.arange(64, dtype=float) + 0j
        result = run_fft(FFTParams(n_points=64, n_threads=4),
                         input_values=values)
        assert result.verified


class TestScaling:
    def test_parallel_speedup(self):
        serial = run_fft(FFTParams(n_points=256, n_threads=1, verify=False))
        parallel = run_fft(FFTParams(n_points=256, n_threads=8,
                                     verify=False))
        assert serial.total_cycles / parallel.total_cycles > 4.0

    def test_barrier_episodes_counted(self):
        result = run_fft(FFTParams(n_points=64, n_threads=4))
        assert result.barrier_episodes == 5  # the six-step's five barriers


class TestFigure7Shape:
    def test_hw_beats_sw_at_16_threads(self):
        hw = run_fft(FFTParams(n_points=256, n_threads=16, barrier="hw",
                               verify=False))
        sw = run_fft(FFTParams(n_points=256, n_threads=16, barrier="sw",
                               verify=False))
        assert hw.total_cycles < sw.total_cycles

    def test_run_up_stall_down(self):
        """Paper: 'run cycles increases for the hardware barrier
        implementation, while the number of stalls decreases'."""
        hw = run_fft(FFTParams(n_points=256, n_threads=16, barrier="hw",
                               verify=False))
        sw = run_fft(FFTParams(n_points=256, n_threads=16, barrier="sw",
                               verify=False))
        assert hw.run_cycles > sw.run_cycles
        assert hw.stall_cycles < sw.stall_cycles

    def test_advantage_grows_with_threads(self):
        deltas = []
        for p in (4, 16):
            hw = run_fft(FFTParams(n_points=256, n_threads=p, barrier="hw",
                                   verify=False))
            sw = run_fft(FFTParams(n_points=256, n_threads=p, barrier="sw",
                                   verify=False))
            deltas.append((hw.total_cycles - sw.total_cycles)
                          / sw.total_cycles)
        assert deltas[1] < deltas[0]  # more negative = bigger win
