"""Property-based fuzzing of the ISA interpreter.

Hypothesis generates random straight-line integer programs; a trivial
reference executor (plain Python semantics, no timing) predicts the
final register file. The interpreter must agree functionally no matter
what the timing model does — and the timing side must stay consistent
(monotonic clock, instruction count equal to program length).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chip import Chip
from repro.isa import Interpreter
from repro.isa.instruction import Instruction
from repro.isa.opcodes import opcode
from repro.isa.program import Program

_U32 = 0xFFFFFFFF

#: (mnemonic, reference lambda(a, b, imm)) for R-format integer ops.
_R_OPS = {
    "add": lambda a, b: (a + b) & _U32,
    "sub": lambda a, b: (a - b) & _U32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: (~(a | b)) & _U32,
    "slt": lambda a, b: int(_sx(a) < _sx(b)),
    "sltu": lambda a, b: int(a < b),
    "sll": lambda a, b: (a << (b & 31)) & _U32,
    "srl": lambda a, b: (a >> (b & 31)) & _U32,
    "sra": lambda a, b: (_sx(a) >> (b & 31)) & _U32,
    "mul": lambda a, b: (_sx(a) * _sx(b)) & _U32,
    "mulhu": lambda a, b: ((a * b) >> 32) & _U32,
}

_I_OPS = {
    "addi": lambda a, imm: (a + imm) & _U32,
    "andi": lambda a, imm: a & (imm & _U32),
    "ori": lambda a, imm: a | (imm & _U32),
    "xori": lambda a, imm: a ^ (imm & _U32),
    "slti": lambda a, imm: int(_sx(a) < imm),
    "slli": lambda a, imm: (a << (imm & 31)) & _U32,
    "srli": lambda a, imm: (a >> (imm & 31)) & _U32,
}


def _sx(v: int) -> int:
    return v - (1 << 32) if v & 0x80000000 else v


@st.composite
def straightline_programs(draw):
    """A random straight-line ALU program plus its instruction list."""
    n = draw(st.integers(1, 40))
    instructions = []
    for _ in range(n):
        if draw(st.booleans()):
            name = draw(st.sampled_from(sorted(_R_OPS)))
            instructions.append(Instruction(
                opcode(name),
                rd=draw(st.integers(0, 31)),
                ra=draw(st.integers(0, 31)),
                rb=draw(st.integers(0, 31)),
            ))
        else:
            name = draw(st.sampled_from(sorted(_I_OPS)))
            imm = draw(st.integers(0, 31)) if name in ("slli", "srli") \
                else draw(st.integers(-(1 << 12), (1 << 12) - 1))
            instructions.append(Instruction(
                opcode(name),
                rd=draw(st.integers(0, 31)),
                ra=draw(st.integers(0, 31)),
                imm=imm,
            ))
    instructions.append(Instruction(opcode("halt")))
    return instructions


def _reference_run(instructions, init):
    regs = dict(init)

    def read(r):
        return 0 if r == 0 else regs.get(r, 0)

    for inst in instructions:
        name = inst.opcode.name
        if name == "halt":
            break
        if name in _R_OPS:
            value = _R_OPS[name](read(inst.ra), read(inst.rb))
        else:
            value = _I_OPS[name](read(inst.ra), inst.imm)
        if inst.rd != 0:
            regs[inst.rd] = value & _U32
    return regs


@settings(max_examples=60, deadline=None)
@given(straightline_programs(),
       st.dictionaries(st.integers(1, 31), st.integers(0, _U32),
                       max_size=8))
def test_interpreter_matches_reference(instructions, init_regs):
    program = Program(instructions=list(instructions))
    chip = Chip()
    interp = Interpreter(chip, model_fetch=False)
    state = interp.add_thread(0, program, init_regs=dict(init_regs))
    cycles = interp.run()

    expected = _reference_run(instructions, init_regs)
    for reg in range(32):
        want = 0 if reg == 0 else expected.get(reg, 0)
        assert state.regs.read(reg) == want, f"r{reg}"

    # Timing invariants: one retired instruction per program slot, and
    # the clock covered at least the issue slots.
    assert state.tu.counters.instructions == len(instructions)
    assert cycles >= len(instructions) - 1


@settings(max_examples=20, deadline=None)
@given(straightline_programs())
def test_encode_decode_preserves_execution(instructions):
    """Machine-word round-tripping cannot change program behaviour."""
    program = Program(instructions=list(instructions))
    reloaded = Program.from_words(program.encode())

    def final_regs(prog):
        chip = Chip()
        interp = Interpreter(chip, model_fetch=False)
        state = interp.add_thread(0, prog, init_regs={5: 12345})
        interp.run()
        return [state.regs.read(r) for r in range(32)]

    assert final_regs(program) == final_regs(reloaded)
