"""Property-based fuzzing of the ISA interpreter.

Hypothesis generates random straight-line integer programs; a trivial
reference executor (plain Python semantics, no timing) predicts the
final register file. The interpreter must agree functionally no matter
what the timing model does — and the timing side must stay consistent
(monotonic clock, instruction count equal to program length).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chip import Chip
from repro.isa import Interpreter
from repro.isa.instruction import Instruction
from repro.isa.opcodes import opcode
from repro.isa.program import Program

_U32 = 0xFFFFFFFF

#: (mnemonic, reference lambda(a, b, imm)) for R-format integer ops.
_R_OPS = {
    "add": lambda a, b: (a + b) & _U32,
    "sub": lambda a, b: (a - b) & _U32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: (~(a | b)) & _U32,
    "slt": lambda a, b: int(_sx(a) < _sx(b)),
    "sltu": lambda a, b: int(a < b),
    "sll": lambda a, b: (a << (b & 31)) & _U32,
    "srl": lambda a, b: (a >> (b & 31)) & _U32,
    "sra": lambda a, b: (_sx(a) >> (b & 31)) & _U32,
    "mul": lambda a, b: (_sx(a) * _sx(b)) & _U32,
    "mulhu": lambda a, b: ((a * b) >> 32) & _U32,
}

_I_OPS = {
    "addi": lambda a, imm: (a + imm) & _U32,
    "andi": lambda a, imm: a & (imm & _U32),
    "ori": lambda a, imm: a | (imm & _U32),
    "xori": lambda a, imm: a ^ (imm & _U32),
    "slti": lambda a, imm: int(_sx(a) < imm),
    "slli": lambda a, imm: (a << (imm & 31)) & _U32,
    "srli": lambda a, imm: (a >> (imm & 31)) & _U32,
}


def _sx(v: int) -> int:
    return v - (1 << 32) if v & 0x80000000 else v


@st.composite
def straightline_programs(draw):
    """A random straight-line ALU program plus its instruction list."""
    n = draw(st.integers(1, 40))
    instructions = []
    for _ in range(n):
        if draw(st.booleans()):
            name = draw(st.sampled_from(sorted(_R_OPS)))
            instructions.append(Instruction(
                opcode(name),
                rd=draw(st.integers(0, 31)),
                ra=draw(st.integers(0, 31)),
                rb=draw(st.integers(0, 31)),
            ))
        else:
            name = draw(st.sampled_from(sorted(_I_OPS)))
            imm = draw(st.integers(0, 31)) if name in ("slli", "srli") \
                else draw(st.integers(-(1 << 12), (1 << 12) - 1))
            instructions.append(Instruction(
                opcode(name),
                rd=draw(st.integers(0, 31)),
                ra=draw(st.integers(0, 31)),
                imm=imm,
            ))
    instructions.append(Instruction(opcode("halt")))
    return instructions


def _reference_run(instructions, init):
    regs = dict(init)

    def read(r):
        return 0 if r == 0 else regs.get(r, 0)

    for inst in instructions:
        name = inst.opcode.name
        if name == "halt":
            break
        if name in _R_OPS:
            value = _R_OPS[name](read(inst.ra), read(inst.rb))
        else:
            value = _I_OPS[name](read(inst.ra), inst.imm)
        if inst.rd != 0:
            regs[inst.rd] = value & _U32
    return regs


@settings(max_examples=60, deadline=None)
@given(straightline_programs(),
       st.dictionaries(st.integers(1, 31), st.integers(0, _U32),
                       max_size=8))
def test_interpreter_matches_reference(instructions, init_regs):
    program = Program(instructions=list(instructions))
    chip = Chip()
    interp = Interpreter(chip, model_fetch=False)
    state = interp.add_thread(0, program, init_regs=dict(init_regs))
    cycles = interp.run()

    expected = _reference_run(instructions, init_regs)
    for reg in range(32):
        want = 0 if reg == 0 else expected.get(reg, 0)
        assert state.regs.read(reg) == want, f"r{reg}"

    # Timing invariants: one retired instruction per program slot, and
    # the clock covered at least the issue slots.
    assert state.tu.counters.instructions == len(instructions)
    assert cycles >= len(instructions) - 1


# ---------------------------------------------------------------------------
# Block-dispatch differential fuzzing
#
# Basic-block superinstructions (repro.isa.blocks) must be a pure
# host-side optimization: any program, under either dispatcher, must
# produce identical cycles, registers, scoreboard, counters, and memory.
# The strategy below goes beyond straight-line ALU work on purpose —
# forward branches carve unpredictable block shapes, memory/FPU/atomic/
# SPR instructions pin the mid-block yield protocol, and `tid`/`sync`/
# `nop` cover the system ops.
# ---------------------------------------------------------------------------
_FPU_FUZZ_OPS = ("fadd", "fsub", "fmul", "fmadd", "fmsub",
                 "fneg", "fabs", "fmov", "fcmplt", "fcmpeq")
_MEM_FUZZ_OPS = ("lw", "sw", "lhu", "sh", "lbu", "sb", "ld", "sd")
#: Destinations exclude r8/r9, which anchor the memory base addresses.
_DEST_REGS = tuple(r for r in range(16) if r not in (8, 9))


@st.composite
def mixed_programs(draw):
    """Programs with branches, memory, FPU, atomic, and SPR traffic.

    Branches only jump forward, so every program terminates. Memory
    ops index off r8/r9 (preset to disjoint backing regions by the
    test) with 8-byte-aligned immediates, so doubles stay aligned.
    """
    n = draw(st.integers(3, 24))
    body = []
    for i in range(n):
        kind = draw(st.sampled_from(
            ["alu", "alu", "mem", "fpu", "branch", "atomic", "sys"]
        ))
        if kind == "branch" and i >= n - 1:
            kind = "sys"  # no room left for a forward target
        if kind == "alu":
            name = draw(st.sampled_from(sorted(_R_OPS)))
            body.append(Instruction(
                opcode(name), rd=draw(st.sampled_from(_DEST_REGS)),
                ra=draw(st.integers(0, 15)), rb=draw(st.integers(0, 15)),
            ))
        elif kind == "mem":
            name = draw(st.sampled_from(_MEM_FUZZ_OPS))
            rd = draw(st.sampled_from(range(10, 31, 2))) \
                if name in ("ld", "sd") \
                else draw(st.sampled_from(_DEST_REGS))
            body.append(Instruction(
                opcode(name), rd=rd, ra=draw(st.sampled_from((8, 9))),
                imm=8 * draw(st.integers(0, 63)),
            ))
        elif kind == "fpu":
            name = draw(st.sampled_from(_FPU_FUZZ_OPS))
            pairs = range(10, 31, 2)
            rd = draw(st.sampled_from(_DEST_REGS)) \
                if name in ("fcmplt", "fcmpeq") \
                else draw(st.sampled_from(pairs))
            body.append(Instruction(
                opcode(name), rd=rd, ra=draw(st.sampled_from(pairs)),
                rb=draw(st.sampled_from(pairs)),
            ))
        elif kind == "branch":
            name = draw(st.sampled_from(("beq", "bne", "blt", "bgeu")))
            # Forward only, never past the trailing halt at index n:
            # target = i + 1 + imm must stay <= n.
            body.append(Instruction(
                opcode(name), ra=draw(st.integers(0, 15)),
                rb=draw(st.integers(0, 15)),
                imm=draw(st.integers(1, n - i - 1)),
            ))
        elif kind == "atomic":
            name = draw(st.sampled_from(
                ("amoadd", "amoswap", "amoand", "amoor")
            ))
            body.append(Instruction(
                opcode(name), rd=draw(st.sampled_from(_DEST_REGS)),
                ra=draw(st.sampled_from((8, 9))),
                rb=draw(st.integers(0, 15)),
            ))
        else:
            name = draw(st.sampled_from(("tid", "sync", "nop", "mtspr")))
            body.append(Instruction(
                opcode(name), rd=draw(st.sampled_from(_DEST_REGS)),
                ra=draw(st.integers(0, 15)),
            ))
    body.append(Instruction(opcode("halt")))
    return body


def _run_dispatch(instructions, init_regs, init_doubles, model_fetch,
                  block_dispatch):
    program = Program(instructions=list(instructions))
    chip = Chip()
    interp = Interpreter(chip, model_fetch=model_fetch,
                         block_dispatch=block_dispatch)
    state = interp.add_thread(
        0, program, init_regs=dict(init_regs),
        init_doubles=dict(init_doubles),
    )
    cycles = interp.run()
    c = state.tu.counters
    return {
        "cycles": cycles,
        "regs": [state.regs.read(r) for r in range(64)],
        "ready": list(state.ready),
        "counters": (c.instructions, c.run_cycles, c.stall_cycles,
                     c.stall_events, c.loads, c.stores, c.flops,
                     c.finish_time),
        "memory": bytes(chip.memory.backing.read_block(0x8000, 0x2200)),
    }


@settings(max_examples=40, deadline=None)
@given(mixed_programs(),
       st.dictionaries(st.integers(1, 15), st.integers(0, _U32),
                       max_size=8),
       st.dictionaries(st.sampled_from(range(10, 31, 2)),
                       st.floats(-1e6, 1e6, allow_nan=False),
                       max_size=6),
       st.booleans())
def test_block_dispatch_differential(instructions, init_regs,
                                     init_doubles, model_fetch):
    init_regs = {**init_regs, 8: 0x8000, 9: 0x9000}
    results = [
        _run_dispatch(instructions, init_regs, init_doubles,
                      model_fetch, block_dispatch)
        for block_dispatch in (False, True)
    ]
    assert results[0] == results[1]


@settings(max_examples=20, deadline=None)
@given(straightline_programs())
def test_encode_decode_preserves_execution(instructions):
    """Machine-word round-tripping cannot change program behaviour."""
    program = Program(instructions=list(instructions))
    reloaded = Program.from_words(program.encode())

    def final_regs(prog):
        chip = Chip()
        interp = Interpreter(chip, model_fetch=False)
        state = interp.add_thread(0, prog, init_regs={5: 12345})
        interp.run()
        return [state.regs.read(r) for r in range(32)]

    assert final_regs(program) == final_regs(reloaded)
