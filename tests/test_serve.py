"""Tests for repro.serve: protocol, round trips, admission, shutdown."""

import asyncio
import json
import multiprocessing
import threading
import time

import pytest

from repro.errors import ServeError
from repro.jobs import JobSpec, ResultCache
from repro.jobs.pool import JobEvent
from repro.serve import (
    Rejected,
    ServeClient,
    ServeConfig,
    SimServer,
    serve_in_thread,
    shard_request,
)
from repro.serve.protocol import decode_event, encode_event
from repro.serve.server import _Entry

SQUARE = "repro.jobs.testing:square"
SLEEP = "repro.jobs.testing:sleep"


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    """Pin the fingerprint so tests never hash the whole source tree."""
    monkeypatch.setenv("REPRO_JOBS_CODE_VERSION", "serve-test-version")


def _config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(port=0, n_workers=1, cache_dir=str(tmp_path / "cache"),
                    batch_window=0.005)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _client(server, **kwargs) -> ServeClient:
    kwargs.setdefault("client_id", "test")
    kwargs.setdefault("timeout", 30.0)
    return ServeClient(f"http://{server.host}:{server.port}", **kwargs)


# ---------------------------------------------------------------------------
# Protocol: sharding and framing
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_single_spec(self):
        specs = shard_request({"spec": {"task": SQUARE,
                                        "payload": {"n": 3}}})
        assert specs == [JobSpec(task=SQUARE, payload={"n": 3})]

    def test_sweep_shards_deterministically(self):
        document = {"sweep": {"task": SQUARE, "payload": {"base": 1},
                              "grid": {"n": [1, 2], "m": [10, 20]},
                              "seed": 7}}
        specs = shard_request(document)
        # Grid keys in sorted order (m before n), values in listed order.
        assert [s.payload for s in specs] == [
            {"base": 1, "m": 10, "n": 1}, {"base": 1, "m": 10, "n": 2},
            {"base": 1, "m": 20, "n": 1}, {"base": 1, "m": 20, "n": 2},
        ]
        assert all(s.seed == 7 for s in specs)
        assert specs == shard_request(document)

    @pytest.mark.parametrize("document", [
        None,
        [],
        {},
        {"spec": {"task": SQUARE}, "sweep": {"task": SQUARE}},
        {"sweep": {"task": "no-colon"}},
        {"sweep": {"task": SQUARE, "grid": {"n": []}}},
        {"sweep": {"task": SQUARE, "grid": "nope"}},
        {"sweep": {"task": SQUARE, "seed": "x"}},
    ])
    def test_malformed_documents(self, document):
        with pytest.raises(ServeError):
            shard_request(document)

    def test_oversized_sweep(self):
        with pytest.raises(ServeError, match="split the grid"):
            shard_request({"sweep": {"task": SQUARE,
                                     "grid": {"a": list(range(100)),
                                              "b": list(range(100))}}})

    def test_event_framing_roundtrip(self):
        doc = {"event": "done", "index": 3}
        assert decode_event(encode_event(doc)) == doc
        with pytest.raises(ServeError):
            decode_event(b"{not json}\n")
        with pytest.raises(ServeError):
            decode_event(b'{"no_event_key": 1}\n')


# ---------------------------------------------------------------------------
# Request/response round trips
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def test_single_spec_roundtrip(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            result = _client(server).submit_spec(
                JobSpec(task=SQUARE, payload={"n": 9}))
            assert result["ok"] is True
            assert result["value"] == 81
            assert result["cached"] is False

    def test_sweep_results_in_request_order(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            results = _client(server).submit(
                {"sweep": {"task": SQUARE, "grid": {"n": [1, 2, 3, 4]}}})
            assert [doc["value"] for doc in results] == [1, 4, 9, 16]
            assert [doc["index"] for doc in results] == [0, 1, 2, 3]

    def test_job_error_is_reported_not_fatal(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            results = _client(server).submit(
                {"sweep": {"task": "repro.jobs.testing:fail",
                           "payload": {"message": "induced"},
                           "grid": {"which": [1]}}})
            assert results[0]["ok"] is False
            assert "induced" in results[0]["error"]
            # The server survives and still answers.
            assert _client(server).health()["ok"] is True

    def test_bad_request_rejected_with_400(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            with pytest.raises(ServeError, match="exactly one of"):
                _client(server).submit({"neither": 1})

    def test_stats_and_health_endpoints(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            client = _client(server)
            client.submit_spec(JobSpec(task=SQUARE, payload={"n": 2}))
            stats = client.stats()
            assert stats["server"]["queued_jobs"] == 0
            assert stats["admission"]["queue_limit"] == 256
            assert stats["cache"]["entries"] == 1
            assert set(stats["cache"]) \
                >= {"directory", "entries", "bytes", "hits", "misses"}
            assert stats["jobs"]["completed"] == 1
            counters = stats["metrics"]["counters"]
            assert counters['serve.jobs{outcome="miss"}'] == 1
            assert counters['serve.requests{status="ok"}'] == 1
            latency = stats["metrics"]["histograms"][
                'serve.latency_seconds{path="submit"}']
            assert latency["count"] == 1 and latency["p99"] > 0
            assert client.health()["ok"] is True


# ---------------------------------------------------------------------------
# Warm-cache short circuit
# ---------------------------------------------------------------------------
class TestWarmCache:
    def test_warm_requests_never_touch_the_pool(self, tmp_path):
        spec = JobSpec(task=SQUARE, payload={"n": 6})
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, 36, elapsed=0.25)
        with serve_in_thread(_config(tmp_path)) as server:
            events = []
            result = _client(server).submit_spec(
                spec, on_event=lambda doc: events.append(doc["event"]))
            assert result["ok"] is True and result["cached"] is True
            assert result["value"] == 36
            assert events == ["accepted", "hit", "result", "complete"]
            # The runner never saw the job: served entirely from disk.
            assert server.runner.stats["submitted"] == 0
            snap = server.metrics.snapshot()["counters"]
            assert snap['serve.jobs{outcome="hit"}'] == 1

    def test_cold_then_warm(self, tmp_path):
        spec = JobSpec(task=SQUARE, payload={"n": 5})
        with serve_in_thread(_config(tmp_path)) as server:
            client = _client(server)
            first = client.submit_spec(spec)
            second = client.submit_spec(spec)
            assert first["cached"] is False
            assert second["cached"] is True
            assert first["value"] == second["value"] == 25
            assert server.runner.stats["completed"] == 1

    def test_mixed_sweep_splits_warm_and_cold(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(JobSpec(task=SQUARE, payload={"n": 1}), 1, 0.0)
        with serve_in_thread(_config(tmp_path)) as server:
            accepted = {}

            def observe(doc):
                if doc["event"] == "accepted":
                    accepted.update(doc)

            results = _client(server).submit(
                {"sweep": {"task": SQUARE, "grid": {"n": [1, 2]}}},
                on_event=observe)
            assert accepted["warm"] == 1 and accepted["cold"] == 1
            assert [doc["cached"] for doc in results] == [True, False]
            assert [doc["value"] for doc in results] == [1, 4]


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def _submit_sleeper(self, server, seconds=2.0, client_id="holder"):
        """Fire a slow request in a thread; returns (thread, accepted)."""
        accepted = threading.Event()
        thread = threading.Thread(
            target=lambda: _client(server, client_id=client_id).submit_spec(
                JobSpec(task=SLEEP, payload={"seconds": seconds}),
                on_event=lambda doc: accepted.set()
                if doc["event"] == "accepted" else None))
        thread.start()
        assert accepted.wait(10.0), "sleeper request never accepted"
        return thread

    def test_queue_bound_rejects_with_retry_after(self, tmp_path):
        config = _config(tmp_path, queue_limit=1, per_client=8)
        with serve_in_thread(config) as server:
            thread = self._submit_sleeper(server, seconds=1.0)
            time.sleep(0.05)
            with pytest.raises(Rejected) as excinfo:
                _client(server, client_id="other").submit_spec(
                    JobSpec(task=SQUARE, payload={"n": 2}))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            assert "queue full" in str(excinfo.value)
            thread.join()
            snap = server.metrics.snapshot()["counters"]
            assert snap['serve.requests{status="rejected"}'] == 1
            # The rejected request must not skew hit/miss telemetry:
            # only the admitted sleeper counts.
            assert snap['serve.jobs{outcome="miss"}'] == 1

    def test_warm_hits_bypass_a_full_queue(self, tmp_path):
        warm = JobSpec(task=SQUARE, payload={"n": 4})
        cache = ResultCache(tmp_path / "cache")
        cache.put(warm, 16, 0.0)
        config = _config(tmp_path, queue_limit=1, per_client=8)
        with serve_in_thread(config) as server:
            thread = self._submit_sleeper(server, seconds=1.0)
            time.sleep(0.05)
            result = _client(server, client_id="other").submit_spec(warm)
            assert result["cached"] is True and result["value"] == 16
            thread.join()

    def test_per_client_cap(self, tmp_path):
        config = _config(tmp_path, queue_limit=64, per_client=1)
        with serve_in_thread(config) as server:
            thread = self._submit_sleeper(server, seconds=1.0,
                                          client_id="greedy")
            time.sleep(0.05)
            with pytest.raises(Rejected, match="open requests"):
                _client(server, client_id="greedy").submit_spec(
                    JobSpec(task=SQUARE, payload={"n": 2}))
            # A different tenant is unaffected.
            other = _client(server, client_id="patient").submit_spec(
                JobSpec(task=SQUARE, payload={"n": 2}))
            assert other["value"] == 4
            thread.join()

    def test_disconnect_before_enqueue_releases_queue_capacity(
            self, tmp_path):
        """A client that vanishes before its cold jobs reach the
        dispatcher must not leak its queue reservation (it would
        otherwise 429 all cold traffic forever)."""

        class _BrokenWriter:
            def write(self, data):
                raise ConnectionError("client went away")

            async def drain(self):
                pass

        with serve_in_thread(_config(tmp_path, queue_limit=2)) as server:
            spec = JobSpec(task=SQUARE, payload={"n": 3})
            handle = asyncio.run_coroutine_threadsafe(
                server._stream_submit(_BrokenWriter(), [spec], [],
                                      [(0, spec)], time.perf_counter()),
                server._loop)
            with pytest.raises(ConnectionError):
                handle.result(10.0)
            assert server._queued_jobs == 0
            # Capacity really is back: a fresh request still fits.
            assert _client(server).submit_spec(spec)["value"] == 9

    def test_retry_after_rejection_succeeds(self, tmp_path):
        config = _config(tmp_path, queue_limit=1, per_client=8)
        with serve_in_thread(config) as server:
            thread = self._submit_sleeper(server, seconds=0.3)
            time.sleep(0.05)
            rejections = []
            results = _client(server, client_id="other").submit_with_retry(
                {"spec": JobSpec(task=SQUARE,
                                 payload={"n": 3}).to_dict()},
                max_sleep=0.2, on_reject=rejections.append)
            assert results[0]["value"] == 9
            assert len(rejections) >= 1
            thread.join()


# ---------------------------------------------------------------------------
# In-flight dedup
# ---------------------------------------------------------------------------
class TestDedup:
    def test_concurrent_identical_specs_share_one_pool_job(self, tmp_path):
        """Two clients, one cold spec in flight: exactly one job runs."""
        spec = JobSpec(task=SLEEP, payload={"seconds": 0.8})
        with serve_in_thread(_config(tmp_path, per_client=8)) as server:
            accepted = threading.Event()
            first: dict = {}

            def _primary():
                first["result"] = _client(
                    server, client_id="alpha").submit_spec(
                    spec, on_event=lambda doc: accepted.set()
                    if doc["event"] == "accepted" else None)

            thread = threading.Thread(target=_primary)
            thread.start()
            assert accepted.wait(10.0), "primary request never accepted"
            time.sleep(0.1)  # let the primary's job reach the pool
            events = []
            second = _client(server, client_id="beta").submit_spec(
                spec, on_event=events.append)
            thread.join()
            assert "error" not in first["result"]
            assert "error" not in second
            assert second["value"] == first["result"]["value"]
            # The whole point: the second request submitted nothing.
            assert server.runner.stats["submitted"] == 1
            assert any(doc["event"] == "dedup" for doc in events)
            snap = server.metrics.snapshot()["counters"]
            assert snap['serve.jobs{outcome="dedup"}'] == 1
            # The follower held no queue slot; accounting drained to 0.
            assert server._queued_jobs == 0

    def test_sequential_identical_specs_do_not_dedup(self, tmp_path):
        """Dedup is for in-flight work only; finished jobs leave the
        map (the cache, not the dedup map, serves repeats)."""
        spec = JobSpec(task=SQUARE, payload={"n": 7})
        config = _config(tmp_path, use_cache=False)
        with serve_in_thread(config) as server:
            first = _client(server).submit_spec(spec)
            second = _client(server).submit_spec(spec)
            assert first["value"] == second["value"] == 49
            assert server.runner.stats["submitted"] == 2
            assert not server._inflight


# ---------------------------------------------------------------------------
# Event-stream ordering
# ---------------------------------------------------------------------------
class TestEventStream:
    def test_cold_request_event_order(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            events = []
            _client(server).submit_spec(
                JobSpec(task=SQUARE, payload={"n": 3}),
                on_event=events.append)
            kinds = [doc["event"] for doc in events]
            assert kinds == ["accepted", "start", "done", "result",
                             "complete"]
            assert events[0]["jobs"] == 1 and events[0]["cold"] == 1
            assert events[-1]["ok"] == 1 and events[-1]["failed"] == 0

    def test_sweep_per_job_progress_precedes_results(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            events = []
            _client(server).submit(
                {"sweep": {"task": SQUARE, "grid": {"n": [1, 2, 3]}}},
                on_event=events.append)
            kinds = [doc["event"] for doc in events]
            assert kinds[0] == "accepted" and kinds[-1] == "complete"
            # Every done for a job precedes every result; per-index the
            # start precedes the done.
            assert max(i for i, k in enumerate(kinds) if k == "done") \
                < kinds.index("result")
            for index in range(3):
                starts = [i for i, doc in enumerate(events)
                          if doc["event"] == "start"
                          and doc["index"] == index]
                dones = [i for i, doc in enumerate(events)
                         if doc["event"] == "done" and doc["index"] == index]
                assert starts and dones and starts[0] < dones[0]

    def test_whitespace_only_detail_is_dropped_not_fatal(self, tmp_path):
        """A whitespace-only JobEvent.detail must not crash the
        forwarder and swallow the progress event with it."""
        with serve_in_thread(_config(tmp_path)) as server:
            spec = JobSpec(task=SQUARE, payload={"n": 1})

            async def scenario():
                events: asyncio.Queue = asyncio.Queue()
                future = server._loop.create_future()
                server._routing = [_Entry(spec, 7, events, future)]
                try:
                    server._on_job_event(
                        JobEvent(kind="start", index=0, detail="  \n\t "))
                    server._on_job_event(
                        JobEvent(kind="done", index=0,
                                 detail="first\nlast line\n"))
                    await asyncio.sleep(0.05)
                    return events.get_nowait(), events.get_nowait()
                finally:
                    server._routing = None

            first, second = asyncio.run_coroutine_threadsafe(
                scenario(), server._loop).result(10.0)
            assert first["event"] == "start" and "detail" not in first
            assert first["index"] == 7
            assert second["detail"] == "last line"


# ---------------------------------------------------------------------------
# Shutdown
# ---------------------------------------------------------------------------
class TestShutdown:
    def test_clean_shutdown_leaves_no_processes(self, tmp_path):
        config = _config(tmp_path, n_workers=2)
        with serve_in_thread(config) as server:
            result = _client(server).submit_spec(
                JobSpec(task=SQUARE, payload={"n": 7}))
            assert result["value"] == 49
            host, port = server.host, server.port
        assert multiprocessing.active_children() == []
        with pytest.raises(OSError):
            ServeClient(f"http://{host}:{port}", timeout=2.0).health()

    def test_closing_server_refuses_new_work(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            client = _client(server)
            client.submit_spec(JobSpec(task=SQUARE, payload={"n": 2}))
            server._closing = True  # as stop() sets before draining
            with pytest.raises(Rejected) as excinfo:
                client.submit_spec(JobSpec(task=SQUARE, payload={"n": 3}))
            assert excinfo.value.status == 503
            server._closing = False

    def test_entries_behind_the_sentinel_fail_cleanly(self, tmp_path):
        """A cold job enqueued after the shutdown sentinel must resolve
        (with an error) instead of hanging its client forever."""
        with serve_in_thread(_config(tmp_path)) as server:
            spec = JobSpec(task=SQUARE, payload={"n": 2})

            async def scenario():
                future = server._loop.create_future()
                entry = _Entry(spec, 0, asyncio.Queue(), future)
                server._queued_jobs += 1
                await server._queue.put(None)   # shutdown sentinel
                await server._queue.put(entry)  # raced past it
                return await asyncio.wait_for(future, 10.0)

            result = asyncio.run_coroutine_threadsafe(
                scenario(), server._loop).result(15.0)
            assert result.ok is False
            assert "shutting down" in result.error
            assert server._queued_jobs == 0

    def test_drain_timeout_force_cancels(self, tmp_path):
        config = _config(tmp_path, n_workers=2, drain_timeout=0.3)
        with serve_in_thread(config) as server:
            accepted = threading.Event()
            outcome = {}

            def slow():
                try:
                    outcome["results"] = _client(server).submit(
                        {"spec": JobSpec(
                            task=SLEEP,
                            payload={"seconds": 30}).to_dict()},
                        on_event=lambda doc: accepted.set()
                        if doc["event"] == "accepted" else None)
                except ServeError as error:
                    outcome["error"] = error

            thread = threading.Thread(target=slow)
            thread.start()
            assert accepted.wait(10.0)
        # Exiting the context stopped the server with a 0.3s drain
        # budget: the 30s job was force-cancelled, not awaited.
        thread.join(20.0)
        assert not thread.is_alive()
        assert multiprocessing.active_children() == []
        if "results" in outcome:
            assert outcome["results"][0]["ok"] is False
            assert "cancelled" in outcome["results"][0]["error"]


# ---------------------------------------------------------------------------
# Remote experiments (--serve)
# ---------------------------------------------------------------------------
class TestRemoteExperiments:
    def test_run_experiment_remotely(self, tmp_path, capsys):
        from repro.experiments.runner import main as experiments_main

        with serve_in_thread(_config(tmp_path)) as server:
            url = f"http://{server.host}:{server.port}"
            json_path = tmp_path / "remote.json"
            code = experiments_main(["run", "table2", "--quick",
                                     "--serve", url,
                                     "--json", str(json_path)])
            assert code == 0
            document = json.loads(json_path.read_text())
            assert document["_serve"] == {"requests": 1, "cached": 0,
                                          "failed": 0}
            assert document["table2"]["measurements"]["mismatches"] == 0
            # Warm rerun: the server answers from its cache.
            code = experiments_main(["run", "table2", "--quick",
                                     "--serve", url,
                                     "--json", str(json_path)])
            assert code == 0
            document = json.loads(json_path.read_text())
            assert document["_serve"]["cached"] == 1
        capsys.readouterr()

    def test_serve_flag_conflicts(self, capsys):
        from repro.experiments.runner import main as experiments_main

        assert experiments_main(["run", "table2", "--serve", "u",
                                 "-j", "2"]) == 2
        assert experiments_main(["run", "table2", "--serve", "u",
                                 "--sanitize"]) == 2
        capsys.readouterr()

    def test_unreachable_server_is_a_failure_not_a_crash(self, tmp_path,
                                                         capsys):
        from repro.experiments.runner import main as experiments_main

        code = experiments_main(["run", "table2", "--quick",
                                 "--serve", "http://127.0.0.1:1"])
        assert code == 1
        assert "remote execution" in capsys.readouterr().err
