"""Tests for the ASCII plot renderer."""

import pytest

from repro.analysis.plot import render_plot, render_speedup_plot
from repro.analysis.series import Series


def make_series(label="s", points=((1, 1), (2, 4), (4, 16))):
    s = Series(label, x_name="n", y_name="v")
    for x, y in points:
        s.add(x, y)
    return s


class TestRenderPlot:
    def test_marks_appear(self):
        text = render_plot([make_series()])
        assert "o" in text
        assert "o s" in text  # legend

    def test_empty(self):
        assert render_plot([]) == "(no data)"

    def test_axis_labels(self):
        text = render_plot([make_series(points=((10, 5), (100, 50)))])
        assert "10" in text
        assert "100" in text
        assert "50" in text

    def test_multiple_series_distinct_marks(self):
        a = make_series("alpha")
        b = make_series("beta", points=((1, 2), (2, 8)))
        text = render_plot([a, b])
        assert "o alpha" in text
        assert "x beta" in text

    def test_dimensions(self):
        text = render_plot([make_series()], width=30, height=8)
        rows = [l for l in text.splitlines() if "|" in l]
        assert len(rows) == 8
        interior = rows[0].split("|")[1]
        assert len(interior) == 30

    def test_log_axes_marked_in_legend(self):
        text = render_plot([make_series()], log_x=True, log_y=True)
        assert "log x" in text and "log y" in text

    def test_constant_series_does_not_crash(self):
        text = render_plot([make_series(points=((1, 5), (2, 5)))])
        assert "o" in text

    def test_log_handles_small_values(self):
        s = make_series(points=((1, 1e-15), (10, 1.0)))
        text = render_plot([s], log_y=True)
        assert "|" in text


class TestSpeedupPlot:
    def test_includes_ideal_diagonal(self):
        curve = Series("k", x_name="threads", y_name="speedup")
        for p, s in ((1, 1), (2, 1.9), (4, 3.5)):
            curve.add(p, s)
        text = render_speedup_plot([curve])
        assert "ideal" in text
        assert "log x" in text

    def test_empty_ok(self):
        assert render_speedup_plot([]) == "(no data)"
