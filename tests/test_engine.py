"""Tests for the event-driven simulation engine."""

import pytest

from repro.engine.events import EventQueue, Waiter
from repro.engine.resources import (
    NonPipelinedUnit,
    PipelinedUnit,
    RoundRobinArbiter,
    TimelineResource,
)
from repro.engine.scheduler import BLOCK, Scheduler
from repro.engine.tracing import NULL_TRACER, Tracer
from repro.errors import DeadlockError, SimulationError


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(5, "b")
        q.push(1, "a")
        q.push(9, "c")
        assert [q.pop() for _ in range(3)] == [(1, "a"), (5, "b"), (9, "c")]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(3, "first")
        q.push(3, "second")
        assert q.pop() == (3, "first")
        assert q.pop() == (3, "second")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0, None)
        assert len(q) == 1 and q

    def test_peek_time(self):
        q = EventQueue()
        q.push(7, "x")
        assert q.peek_time() == 7
        assert len(q) == 1

    def test_drain(self):
        q = EventQueue()
        for t in (3, 1, 2):
            q.push(t, t)
        assert [t for t, _ in q.drain()] == [1, 2, 3]


class TestWaiter:
    def test_fifo_wake_all(self):
        w = Waiter()
        w.park("a")
        w.park("b")
        assert w.wake_all() == ["a", "b"]
        assert len(w) == 0

    def test_wake_one(self):
        w = Waiter()
        assert w.wake_one() is None
        w.park("x")
        w.park("y")
        assert w.wake_one() == "x"
        assert len(w) == 1


class TestTimelineResource:
    def test_grants_at_request_time_when_free(self):
        r = TimelineResource("r")
        assert r.reserve(10, 5) == 10
        assert r.next_free == 15

    def test_queues_behind_busy(self):
        r = TimelineResource("r")
        r.reserve(0, 10)
        assert r.reserve(3, 5) == 10
        assert r.next_free == 15

    def test_utilization(self):
        r = TimelineResource("r")
        r.reserve(0, 10)
        r.reserve(50, 10)
        assert r.utilization(100) == pytest.approx(0.2)
        assert r.utilization(0) == 0.0

    def test_counts_reorderings(self):
        r = TimelineResource("r")
        r.reserve(10, 1)
        r.reserve(5, 1)
        assert r.reorderings == 1

    def test_rejects_negative(self):
        r = TimelineResource("r")
        with pytest.raises(SimulationError):
            r.reserve(-1, 1)

    def test_reset(self):
        r = TimelineResource("r")
        r.reserve(0, 10)
        r.reset()
        assert r.next_free == 0
        assert r.busy_cycles == 0
        assert r.n_requests == 0


class TestUnits:
    def test_pipelined_one_issue_per_cycle(self):
        p = PipelinedUnit("p")
        assert p.issue(0) == 0
        assert p.issue(0) == 1
        assert p.issue(0) == 2

    def test_non_pipelined_occupies_fully(self):
        d = NonPipelinedUnit("d")
        assert d.execute(0, 30) == 0
        assert d.execute(1, 30) == 30


class TestRoundRobinArbiter:
    def test_rotates_fairly(self):
        a = RoundRobinArbiter(4)
        assert a.pick([0, 1, 2, 3]) == 0
        assert a.pick([0, 1, 2, 3]) == 1
        assert a.pick([0, 3]) == 3
        assert a.pick([0, 3]) == 0

    def test_no_starvation_under_contention(self):
        a = RoundRobinArbiter(4)
        winners = [a.pick([0, 1, 2, 3]) for _ in range(40)]
        for requester in range(4):
            assert winners.count(requester) == 10

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            RoundRobinArbiter(2).pick([])

    def test_rejects_zero_size(self):
        with pytest.raises(SimulationError):
            RoundRobinArbiter(0)


class TestScheduler:
    def test_runs_single_process(self):
        s = Scheduler()
        trace = []

        def body():
            t = yield 5
            trace.append(t)
            t = yield 12
            trace.append(t)

        s.spawn(body())
        assert s.run() == 12
        assert trace == [5, 12]

    def test_interleaves_by_time(self):
        s = Scheduler()
        order = []

        def body(name, times):
            for t in times:
                now = yield t
                order.append((now, name))

        s.spawn(body("a", [2, 10]))
        s.spawn(body("b", [5, 6]))
        s.run()
        assert order == [(2, "a"), (5, "b"), (6, "b"), (10, "a")]

    def test_block_and_wake(self):
        s = Scheduler()
        log = []

        def sleeper():
            t = yield BLOCK
            log.append(("woke", t))

        def waker(target):
            yield 100
            s.wake(target, 150)
            log.append("sent")

        proc = s.spawn(sleeper())
        s.spawn(waker(proc))
        s.run()
        assert log == ["sent", ("woke", 150)]

    def test_deadlock_detection(self):
        s = Scheduler()

        def stuck():
            yield BLOCK

        s.spawn(stuck())
        with pytest.raises(DeadlockError):
            s.run()

    def test_deadlock_names_the_culprits(self):
        s = Scheduler()

        def stuck():
            yield BLOCK

        s.spawn(stuck(), name="waiter-a")
        s.spawn(stuck(), name="waiter-b")
        with pytest.raises(DeadlockError) as excinfo:
            s.run()
        assert "waiter-a" in str(excinfo.value)
        assert "waiter-b" in str(excinfo.value)

    def test_exit_callbacks_fire(self):
        s = Scheduler()
        finished = []

        def body():
            yield 42

        p = s.spawn(body())
        p.on_exit(finished.append)
        s.run()
        assert finished == [42]

    def test_exit_callback_after_done_fires_immediately(self):
        s = Scheduler()

        def body():
            yield 1

        p = s.spawn(body())
        s.run()
        seen = []
        p.on_exit(seen.append)
        assert seen == [1]

    def test_rejects_yield_into_past(self):
        s = Scheduler()

        def body():
            yield 10
            yield 5

        s.spawn(body())
        with pytest.raises(SimulationError):
            s.run()

    def test_rejects_garbage_yield(self):
        s = Scheduler()

        def body():
            yield "nonsense"

        s.spawn(body())
        with pytest.raises(SimulationError):
            s.run()

    def test_until_bound(self):
        s = Scheduler()

        def body():
            yield 10
            yield 10**9

        s.spawn(body())
        assert s.run(until=100) == 100

    def test_spawn_in_past_rejected(self):
        s = Scheduler()

        def mk():
            yield 10

        def spawner():
            yield 50
            with pytest.raises(SimulationError):
                s.spawn(mk(), start_time=10)

        s.spawn(spawner())
        s.run()

    def test_live_and_parked_counts(self):
        s = Scheduler()

        def body():
            yield 1

        s.spawn(body())
        assert s.n_live == 1
        s.run()
        assert s.n_live == 0


class TestTracer:
    def test_collects_and_filters(self):
        t = Tracer()
        t.emit(1, "cache0", "miss")
        t.emit(2, "cache0", "hit")
        t.emit(3, "cache1", "miss")
        assert t.count("miss") == 2
        assert len(list(t.events())) == 3

    def test_capacity_bound(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.emit(i, "s", "e")
        assert len(t.records) == 2
        assert t.records[0].time == 3

    def test_null_tracer_discards(self):
        NULL_TRACER.emit(0, "s", "e")
        assert not NULL_TRACER.records
        assert not NULL_TRACER.enabled

    def test_clear(self):
        t = Tracer()
        t.emit(0, "s", "e")
        t.clear()
        assert not t.records
