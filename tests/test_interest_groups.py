"""Tests for the interest-group encoding (Table 1 semantics)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterestGroupError
from repro.memory.interest_groups import (
    IG_ALL,
    IG_OWN,
    InterestGroup,
    Level,
    own_group,
    single_cache_group,
)
from repro.memory.scramble import scramble64, scramble_pick

N_CACHES = 32


class TestLevels:
    def test_set_sizes_match_table_1(self):
        assert Level.OWN.set_size == 1
        assert Level.ONE.set_size == 1
        assert Level.PAIR.set_size == 2
        assert Level.FOUR.set_size == 4
        assert Level.EIGHT.set_size == 8
        assert Level.SIXTEEN.set_size == 16
        assert Level.ALL.set_size == 32


class TestEncoding:
    def test_own_is_byte_zero(self):
        assert IG_OWN == 0
        assert InterestGroup.decode(0).level is Level.OWN

    def test_roundtrip_every_group(self):
        for level in Level:
            if level is Level.OWN:
                groups = [InterestGroup(Level.OWN)]
            elif level is Level.ALL:
                groups = [InterestGroup(Level.ALL)]
            else:
                n_sets = N_CACHES // level.set_size
                groups = [InterestGroup(level, i) for i in range(n_sets)]
            for group in groups:
                assert InterestGroup.decode(group.encode()) == group

    def test_encodings_are_distinct(self):
        seen = set()
        for level in Level:
            n_sets = 1 if level in (Level.OWN, Level.ALL) \
                else N_CACHES // level.set_size
            for i in range(n_sets):
                byte = InterestGroup(level, 0 if level is Level.OWN else i).encode()
                assert byte not in seen
                seen.add(byte)

    def test_rejects_bad_level_bits(self):
        with pytest.raises(InterestGroupError):
            InterestGroup.decode(0b111_00000)

    def test_rejects_nonzero_own_index_bits(self):
        with pytest.raises(InterestGroupError):
            InterestGroup.decode(0b000_00001)

    def test_rejects_index_bits_below_boundary(self):
        # PAIR (level 2) indexes in steps of 2: odd low bits invalid.
        with pytest.raises(InterestGroupError):
            InterestGroup.decode((2 << 5) | 1)

    def test_rejects_out_of_range_byte(self):
        with pytest.raises(InterestGroupError):
            InterestGroup.decode(256)

    def test_index_out_of_field(self):
        with pytest.raises(InterestGroupError):
            InterestGroup(Level.ONE, 32).encode()


class TestCacheSets:
    def test_all_covers_every_cache(self):
        group = InterestGroup(Level.ALL)
        assert group.cache_set(N_CACHES) == tuple(range(32))

    def test_pair_sets_match_table_1(self):
        assert InterestGroup(Level.PAIR, 0).cache_set(N_CACHES) == (0, 1)
        assert InterestGroup(Level.PAIR, 15).cache_set(N_CACHES) == (30, 31)

    def test_eight_sets(self):
        assert InterestGroup(Level.EIGHT, 3).cache_set(N_CACHES) == \
            tuple(range(24, 32))

    def test_own_needs_requester(self):
        with pytest.raises(InterestGroupError):
            InterestGroup(Level.OWN).cache_set(N_CACHES)
        assert InterestGroup(Level.OWN).cache_set(N_CACHES, own_cache=7) == (7,)

    def test_small_chip_rejects_oversized_levels(self):
        with pytest.raises(InterestGroupError):
            InterestGroup(Level.SIXTEEN, 0).cache_set(4)

    def test_all_works_on_small_chips(self):
        assert InterestGroup(Level.ALL).cache_set(4) == (0, 1, 2, 3)

    def test_set_index_out_of_range(self):
        with pytest.raises(InterestGroupError):
            InterestGroup(Level.PAIR, 16).cache_set(N_CACHES)


class TestTargetCache:
    def test_single_member_is_fixed(self):
        group = single_cache_group(8)
        for line in range(100):
            assert group.target_cache(line, N_CACHES) == 8

    def test_own_follows_requester(self):
        group = own_group()
        assert group.target_cache(123, N_CACHES, own_cache=5) == 5
        assert group.target_cache(123, N_CACHES, own_cache=9) == 9

    def test_deterministic(self):
        group = InterestGroup(Level.ALL)
        for line in range(50):
            first = group.target_cache(line, N_CACHES)
            assert group.target_cache(line, N_CACHES) == first

    def test_stays_within_set(self):
        group = InterestGroup(Level.FOUR, 2)  # caches 8..11
        for line in range(200):
            assert group.target_cache(line, N_CACHES) in (8, 9, 10, 11)

    @given(st.integers(0, 10**6))
    def test_all_group_target_in_range(self, line):
        assert 0 <= InterestGroup(Level.ALL).target_cache(line, N_CACHES) < 32

    def test_uniform_utilization(self):
        """The paper: the scrambling function spreads uniformly."""
        group = InterestGroup(Level.ALL)
        counts = [0] * N_CACHES
        n_lines = 32 * 256
        for line in range(n_lines):
            counts[group.target_cache(line, N_CACHES)] += 1
        expected = n_lines / N_CACHES
        for count in counts:
            assert 0.6 * expected < count < 1.4 * expected

    def test_only_own_may_replicate(self):
        assert own_group().may_replicate
        assert not InterestGroup(Level.ALL).may_replicate
        assert not single_cache_group(0).may_replicate


class TestScramble:
    def test_deterministic(self):
        assert scramble64(12345) == scramble64(12345)

    def test_pick_range(self):
        for size in (1, 2, 4, 8, 16, 32):
            for line in range(100):
                assert 0 <= scramble_pick(line, size) < size

    def test_pick_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            scramble_pick(0, 3)

    def test_decorrelates_strides(self):
        """Sequential lines (STREAM's pattern) must not hammer one cache."""
        picks = [scramble_pick(line, 32) for line in range(320)]
        busiest = max(picks.count(c) for c in range(32))
        assert busiest < 40  # uniform would be 10; allow slack but no hammering

    @given(st.integers(0, 2**62))
    def test_scramble_is_64_bit(self, v):
        assert 0 <= scramble64(v) < 2**64
