"""Timed cache-management ops and the software-coherence protocol they
enable — including message-passing litmus tests."""

import pytest

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL, IG_OWN
from repro.runtime.kernel import AllocationPolicy, Kernel


class TestTimedFlush:
    def test_flush_writes_back_dirty_line(self):
        chip = Chip(strict_incoherence=True)
        ea = make_effective(0x1000, IG_OWN)
        chip.memory.store_f64(0, 0, ea, 4.5)
        assert chip.memory.backing.load_f64(0x1000) != 4.5  # still cached
        out = chip.memory.flush_line(100, 0, ea)
        assert chip.memory.backing.load_f64(0x1000) == 4.5
        # A dirty flush pays the bank burst.
        assert out.complete >= 100 + ChipConfig.paper().burst_cycles

    def test_flush_clean_line_is_cheap(self):
        chip = Chip()
        ea = make_effective(0x2000, IG_OWN)
        chip.memory.load_f64(0, 0, ea)
        out = chip.memory.flush_line(100, 0, ea)
        assert out.complete - out.issue_end == 6  # local-hit latency only

    def test_invalidate_discards_dirty_data(self):
        chip = Chip(strict_incoherence=True)
        ea = make_effective(0x3000, IG_OWN)
        chip.memory.backing.store_f64(0x3000, 1.0)
        chip.memory.load_f64(0, 0, ea)
        chip.memory.store_f64(10, 0, ea, 9.9)
        chip.memory.invalidate_line(50, 0, ea)
        # The dirty 9.9 is gone; memory still has 1.0.
        _, value = chip.memory.load_f64(100, 0, ea)
        assert value == 1.0

    def test_next_access_misses_after_invalidate(self):
        chip = Chip()
        ea = make_effective(0x4000, IG_ALL)
        chip.memory.load_f64(0, 0, ea)
        chip.memory.invalidate_line(50, 0, ea)
        out, _ = chip.memory.load_f64(100, 0, ea)
        assert out.kind.value.endswith("miss")


class TestSoftwareCoherenceProtocol:
    def test_own_group_producer_consumer(self):
        """The full OWN-group discipline, all timed: the producer writes
        its replica, flushes; the consumer invalidates, re-reads, and
        sees the new value — in strict-incoherence mode."""
        chip = Chip(ChipConfig.paper(), strict_incoherence=True)
        kernel = Kernel(chip, AllocationPolicy.BALANCED)
        data = kernel.heap.alloc(64)
        flag = kernel.heap.alloc(64)
        data_ea = make_effective(data, IG_OWN)
        flag_ea = make_effective(flag, IG_ALL)

        def producer(ctx):
            # Warm a private replica, then update it.
            yield from ctx.load_f64(data_ea)
            yield from ctx.store_f64(data_ea, 42.0)
            done = yield from ctx.flush_line(data_ea)
            yield from ctx.store_u32(flag_ea, 1, deps=(done,))

        def consumer(ctx):
            # Pull a stale replica first (the hazard).
            yield from ctx.load_f64(data_ea)
            yield from ctx.spin_until(flag_ea, lambda v: v == 1)
            yield from ctx.invalidate_line(data_ea)
            t, value = yield from ctx.load_f64(data_ea)
            return value

        kernel.spawn(producer)   # quad 0
        consumer_thread = kernel.spawn(consumer)  # quad 1
        kernel.run()
        assert consumer_thread.result == 42.0

    def test_without_protocol_consumer_sees_stale(self):
        """Drop the flush/invalidate and the consumer reads its stale
        replica — the exact failure the paper assigns to software."""
        chip = Chip(ChipConfig.paper(), strict_incoherence=True)
        kernel = Kernel(chip, AllocationPolicy.BALANCED)
        data = kernel.heap.alloc(64)
        flag = kernel.heap.alloc(64)
        data_ea = make_effective(data, IG_OWN)
        flag_ea = make_effective(flag, IG_ALL)

        def producer(ctx):
            yield from ctx.load_f64(data_ea)
            yield from ctx.store_f64(data_ea, 42.0)
            yield from ctx.store_u32(flag_ea, 1)

        def consumer(ctx):
            yield from ctx.load_f64(data_ea)  # stale replica cached
            yield from ctx.spin_until(flag_ea, lambda v: v == 1)
            t, value = yield from ctx.load_f64(data_ea)
            return value

        kernel.spawn(producer)
        consumer_thread = kernel.spawn(consumer)
        kernel.run()
        assert consumer_thread.result != 42.0


class TestMessagePassingLitmus:
    def test_coherent_groups_never_reorder(self):
        """Message-passing litmus under IG_ALL: flag set implies data
        visible, across many interleavings (shared-state operations
        execute in global time order)."""
        for stagger in range(0, 60, 7):
            chip = Chip()
            kernel = Kernel(chip, AllocationPolicy.BALANCED)
            data = kernel.heap.alloc(64)
            flag = kernel.heap.alloc(64)

            def producer(ctx, delay=stagger):
                ctx.charge_ops(delay)
                done = yield from ctx.store_f64(ctx.ea(data), 7.0)
                yield from ctx.store_u32(ctx.ea(flag), 1, deps=(done,))

            def consumer(ctx):
                yield from ctx.spin_until(ctx.ea(flag), lambda v: v == 1)
                t, value = yield from ctx.load_f64(ctx.ea(data))
                return value

            kernel.spawn(producer)
            consumer_thread = kernel.spawn(consumer)
            kernel.run()
            assert consumer_thread.result == 7.0, f"stagger={stagger}"
