"""Tests for the analysis/reporting helpers and the Origin baseline."""

import pytest

from repro.analysis.series import Series, merge_render
from repro.analysis.speedup import efficiency, speedup_curve
from repro.analysis.stream_report import STREAM_HEADERS, stream_summary_row
from repro.analysis.tables import format_table
from repro.baselines.origin3800 import (
    ORIGIN_3800_400,
    origin_bandwidth,
    origin_series,
)
from repro.errors import WorkloadError
from repro.workloads.stream import StreamParams, run_stream


class TestSeries:
    def test_add_and_rows(self):
        s = Series("test")
        s.add(1, 2.0)
        s.add(2, 4.0)
        assert s.as_rows() == [(1, 2.0), (2, 4.0)]
        assert len(s) == 2

    def test_render_contains_points(self):
        s = Series("curve", x_name="n", y_name="gb")
        s.add(10, 1.5)
        text = s.render()
        assert "curve" in text
        assert "10" in text and "1.5" in text

    def test_merge_render_aligns_columns(self):
        a = Series("a")
        b = Series("b")
        for x in (1, 2):
            a.add(x, x)
            b.add(x, 10 * x)
        text = merge_render([a, b])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "a" in lines[0] and "b" in lines[0]

    def test_merge_render_empty(self):
        assert merge_render([]) == ""


class TestSpeedup:
    def test_normalizes_to_serial(self):
        curve = speedup_curve("k", [1, 2, 4], [100, 50, 30])
        assert curve.y == [1.0, 2.0, pytest.approx(100 / 30)]

    def test_requires_serial_first(self):
        with pytest.raises(WorkloadError):
            speedup_curve("k", [2, 4], [50, 25])

    def test_mismatched_lengths(self):
        with pytest.raises(WorkloadError):
            speedup_curve("k", [1, 2], [100])

    def test_efficiency(self):
        curve = speedup_curve("k", [1, 4], [100, 50])
        assert efficiency(curve) == [1.0, 0.5]


class TestTables:
    def test_format_basic(self):
        text = format_table(["a", "bb"], [[1, 2.34567], ["x", "y"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.346" in text

    def test_alignment(self):
        text = format_table(["col"], [[123456]])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule) == len(row)


class TestStreamReport:
    def test_row_matches_headers(self):
        result = run_stream(StreamParams(kernel="copy", n_elements=256,
                                         n_threads=2))
        row = stream_summary_row(result)
        assert len(row) == len(STREAM_HEADERS)
        assert row[0] == "copy"
        assert row[-1] == "yes"


class TestOriginBaseline:
    def test_four_kernels(self):
        assert set(ORIGIN_3800_400) == {"copy", "scale", "add", "triad"}

    def test_scaling_monotone(self):
        series = origin_series("triad")
        assert series.y == sorted(series.y)

    def test_128_processor_aggregate_near_paper(self):
        """The paper calls the 128-CPU Origin 'similar' to one ~40 GB/s
        Cyclops chip."""
        total = origin_bandwidth("triad", 128)
        assert 30.0 < total < 60.0

    def test_per_cpu_shape(self):
        """Sub-GB/s per processor, as the published table shows."""
        assert origin_bandwidth("copy", 1) < 1.0
