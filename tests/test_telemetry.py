"""Tests for the repro.telemetry subsystem.

Covers registry semantics, histogram percentiles, Chrome-trace JSON
validity, RunReport round-tripping, live probes (scheduler, barriers),
host profiling, the CLI, and the zero-overhead guarantee of the
disabled path.
"""

import json

import pytest

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.engine.tracing import NULL_TRACER, Tracer
from repro.errors import TelemetryError
from repro.runtime.kernel import AllocationPolicy, Kernel
from repro.telemetry.chrome_trace import (
    CHIP_PID,
    TRACE_PID,
    chrome_trace,
    to_json,
    write_chrome_trace,
)
from repro.telemetry.hostprof import HostProfiler
from repro.telemetry.instrument import ChipInstrumentation, instrument
from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
)
from repro.telemetry.report import RunReport, build_report, chip_counters
from repro.workloads.stream import StreamParams, run_stream


def small_config() -> ChipConfig:
    return ChipConfig.paper()


def run_small_stream(chip: Chip, threads: int = 8) -> object:
    return run_stream(StreamParams(
        kernel="triad", n_elements=512, n_threads=threads,
        verify=False, warmup=False,
    ), chip=chip)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", cache=3)
        c2 = reg.counter("hits", cache=3)
        assert c1 is c2
        assert len(reg) == 1

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", cache=0)
        b = reg.counter("hits", cache=1)
        assert a is not b
        a.inc(5)
        assert b.value == 0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.gauge("depth", a=1, b=2)
        b = reg.gauge("depth", b=2, a=1)
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        counter = reg.counter("ops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7

    def test_snapshot_structure_and_keys(self):
        reg = MetricsRegistry()
        reg.counter("c", cache=1).inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3)
        snap = reg.snapshot()
        assert snap["counters"] == {'c{cache="1"}': 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        # snapshot must be JSON-serializable as-is
        json.loads(json.dumps(snap))

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.clear()
        assert len(reg) == 0

    def test_format_labels(self):
        assert format_labels({}) == ""
        assert format_labels({"b": 2, "a": 1}) == '{a="1",b="2"}'


# ---------------------------------------------------------------------------
# Histogram percentiles
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_percentiles_exact(self):
        hist = Histogram("h", {})
        for v in range(1, 101):  # 1..100
            hist.observe(v)
        assert hist.count == 100
        assert hist.min == 1 and hist.max == 100
        assert hist.mean == pytest.approx(50.5)
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100

    def test_percentile_bounds_checked(self):
        hist = Histogram("h", {})
        with pytest.raises(TelemetryError):
            hist.percentile(101)

    def test_empty_histogram(self):
        hist = Histogram("h", {})
        assert hist.percentile(50) == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["mean"] == 0.0

    def test_sample_cap_keeps_exact_aggregates(self):
        hist = Histogram("h", {}, sample_cap=10)
        for v in range(100):
            hist.observe(v)
        assert hist.count == 100
        assert hist.max == 99
        assert hist.total == sum(range(100))

    def test_snapshot_has_percentile_ladder(self):
        hist = Histogram("h", {})
        hist.observe(2.0)
        snap = hist.snapshot()
        assert set(snap) == {"count", "mean", "min", "max",
                             "p50", "p90", "p99"}


# ---------------------------------------------------------------------------
# Null objects: the disabled path
# ---------------------------------------------------------------------------
class TestDisabledPath:
    def test_null_registry_shares_instruments(self):
        a = NULL_METRICS.counter("anything", x=1)
        b = NULL_METRICS.counter("other")
        assert a is b
        a.inc(100)
        assert a.value == 0
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(5)
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_disabled_run_allocates_nothing(self):
        """Overhead guard: a default run records no metrics, no traces."""
        chip = Chip()
        result = run_small_stream(chip)
        assert result.cycles > 0
        assert chip.telemetry is None
        assert not NULL_TRACER.records
        assert len(NULL_METRICS) == 0
        # harvest into a disabled registry is a no-op too
        inst = ChipInstrumentation(chip, NULL_METRICS)
        inst.harvest(elapsed=result.cycles)
        assert len(NULL_METRICS) == 0

    def test_scheduler_probe_not_attached_when_disabled(self):
        chip = Chip()
        inst = ChipInstrumentation(chip, NULL_METRICS)
        chip.telemetry = inst
        kernel = Kernel(chip)
        assert kernel.scheduler.probe is None


# ---------------------------------------------------------------------------
# Instrumentation harvest + live probes
# ---------------------------------------------------------------------------
class TestInstrumentation:
    def test_harvest_matches_chip_counters(self):
        chip = Chip()
        inst = instrument(chip)
        result = run_small_stream(chip)
        inst.harvest(elapsed=result.cycles)
        snap = inst.registry.snapshot()
        aggregate = chip_counters(chip).aggregate()
        assert snap["gauges"]["chip.run_cycles"] == aggregate.run_cycles
        assert snap["gauges"]["chip.stall_cycles"] == aggregate.stall_cycles
        assert snap["gauges"]["chip.instructions"] == aggregate.instructions
        assert snap["gauges"]["chip.flops"] == aggregate.flops

    def test_scheduler_probe_samples_queue_depth(self):
        chip = Chip()
        inst = instrument(chip)
        run_small_stream(chip)
        assert inst.kernel is not None
        assert inst.kernel.scheduler.steps > 0
        depth = inst.registry.histogram("engine.queue_depth")
        assert depth.count > 0

    def test_hw_barrier_spread_histogram(self):
        chip = Chip()
        inst = instrument(chip)
        kernel = Kernel(chip, AllocationPolicy.BALANCED)
        barrier = kernel.hardware_barrier(0, 8)

        def body(ctx, reps):
            yield from ctx.fp_stream(reps)
            yield from barrier.wait(ctx)

        for i in range(8):
            kernel.spawn(body, 10 * (i + 1))
        kernel.run()
        hist = inst.registry.histogram("barrier.arrival_spread", kind="hw")
        assert hist.count == 1
        assert hist.max > 0  # imbalanced bodies arrive spread out

    def test_sw_barrier_spread_histogram(self):
        chip = Chip()
        inst = instrument(chip)
        kernel = Kernel(chip)
        barrier = kernel.tree_barrier(4)

        def body(ctx):
            yield from barrier.wait(ctx)

        for _ in range(4):
            kernel.spawn(body)
        kernel.run()
        hist = inst.registry.histogram("barrier.arrival_spread", kind="sw")
        assert hist.count == 1

    def test_component_contention_counters(self):
        chip = Chip()
        run_small_stream(chip)
        # STREAM traffic must have moved bytes through switch and banks.
        assert chip.memory.cache_switch.transfers > 0
        assert chip.memory.cache_switch.bytes_moved > 0
        assert sum(b.conflict_cycles for b in chip.memory.banks) >= 0
        assert any(tu.counters.stall_events for tu in chip.threads)

    def test_fpu_contention_counted_under_quad_sharing(self):
        chip = Chip()
        kernel = Kernel(chip)  # sequential: 4 threads share quad 0's FPU

        def body(ctx):
            yield from ctx.fp_stream(50)

        for _ in range(4):
            kernel.spawn(body)
        kernel.run()
        assert chip.fpus[0].contention_cycles > 0


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------
class TestChromeTrace:
    def test_json_validity_and_thread_rows(self, tmp_path):
        tracer = Tracer(capacity=10_000)
        chip = Chip(tracer=tracer)
        run_small_stream(chip, threads=8)
        path = tmp_path / "trace.json"
        n_events = write_chrome_trace(path, chip=chip, tracer=tracer)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n_events
        spans = [e for e in doc["traceEvents"]
                 if e.get("pid") == CHIP_PID and e.get("ph") == "X"]
        # one span per active thread unit
        active = [tu for tu in chip.threads if tu.counters.instructions]
        assert len(spans) == len(active) == 8
        for span in spans:
            assert span["dur"] >= 1
            assert span["args"]["instructions"] > 0

    def test_tracer_rows_grouped_by_source(self):
        tracer = Tracer()
        tracer.emit(1, "cache0", "local_hit")
        tracer.emit(2, "cache1", "local_miss", "phys=0x40")
        tracer.emit(3, "cache0", "local_hit")
        doc = chrome_trace(tracer=tracer)
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == 3
        assert all(e["pid"] == TRACE_PID for e in instants)
        assert len({e["tid"] for e in instants}) == 2
        json.loads(to_json(tracer=tracer))

    def test_empty_trace_is_valid(self):
        doc = chrome_trace()
        assert doc["traceEvents"] == []
        json.loads(json.dumps(doc))


# ---------------------------------------------------------------------------
# RunReport
# ---------------------------------------------------------------------------
class TestRunReport:
    def test_round_trip(self):
        chip = Chip()
        inst = instrument(chip)
        result = run_small_stream(chip)
        inst.harvest(elapsed=result.cycles)
        report = build_report(chip, "stream", params={"threads": 8},
                              registry=inst.registry,
                              results={"cycles": result.cycles})
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_aggregate_matches_chip_counters(self):
        chip = Chip()
        run_small_stream(chip)
        report = build_report(chip, "stream")
        aggregate = chip_counters(chip).aggregate()
        assert report.aggregate["run_cycles"] == aggregate.run_cycles
        assert report.aggregate["stall_cycles"] == aggregate.stall_cycles
        assert report.aggregate["instructions"] == aggregate.instructions
        # per-thread blocks sum to the aggregate
        assert sum(t["run_cycles"] for t in report.threads.values()) \
            == aggregate.run_cycles

    def test_write_and_json_loads(self, tmp_path):
        chip = Chip()
        run_small_stream(chip)
        report = build_report(chip, "stream")
        path = tmp_path / "report.json"
        report.write(path)
        data = json.loads(path.read_text())
        assert data["workload"] == "stream"
        assert data["elapsed_cycles"] > 0

    def test_from_dict_ignores_unknown_keys(self):
        report = RunReport.from_dict({"workload": "x", "bogus": 1})
        assert report.workload == "x"


# ---------------------------------------------------------------------------
# Host profiler
# ---------------------------------------------------------------------------
class TestHostProfiler:
    def test_phases_accumulate(self):
        ticks = iter(range(100))
        prof = HostProfiler(clock=lambda: next(ticks))
        with prof.phase("run"):
            pass
        with prof.phase("run"):
            pass
        timing = prof["run"]
        assert timing.entries == 2
        assert timing.seconds == 2.0  # two 1-tick spans

    def test_rates(self):
        ticks = iter([0.0, 2.0])
        prof = HostProfiler(clock=lambda: next(ticks))
        with prof.phase("sim"):
            pass
        prof.set_work("sim", cycles=1000, events=500)
        summary = prof.summary()["sim"]
        assert summary["cycles_per_sec"] == pytest.approx(500.0)
        assert summary["events_per_sec"] == pytest.approx(250.0)

    def test_reentrancy_guard(self):
        prof = HostProfiler()
        with pytest.raises(TelemetryError):
            with prof.phase("a"):
                with prof.phase("a"):
                    pass

    def test_unknown_phase_errors(self):
        prof = HostProfiler()
        with pytest.raises(TelemetryError):
            prof.set_work("nope", cycles=1)
        with pytest.raises(TelemetryError):
            prof["nope"]


# ---------------------------------------------------------------------------
# Tracer capacity (deque bound)
# ---------------------------------------------------------------------------
class TestTracerCapacity:
    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit(i, "s", "e")
        assert len(tracer.records) == 3
        assert [r.time for r in tracer.records] == [7, 8, 9]
        assert tracer.capacity == 3

    def test_unbounded_by_default(self):
        tracer = Tracer()
        assert tracer.capacity is None
        for i in range(100):
            tracer.emit(i, "s", "e")
        assert len(tracer.records) == 100
        assert tracer.records[0].time == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_stream_with_trace_and_report(self, tmp_path):
        from repro.telemetry.__main__ import main

        trace = tmp_path / "out.trace.json"
        report = tmp_path / "out.report.json"
        code = main(["--workload", "stream", "--threads", "8",
                     "--size", "512", "--trace", str(trace),
                     "--report", str(report)])
        assert code == 0
        trace_doc = json.loads(trace.read_text())
        spans = [e for e in trace_doc["traceEvents"]
                 if e.get("pid") == CHIP_PID and e.get("ph") == "X"]
        assert len(spans) == 8
        report_doc = json.loads(report.read_text())
        assert report_doc["aggregate"]["run_cycles"] > 0
        assert report_doc["metrics"]["gauges"]["chip.run_cycles"] \
            == report_doc["aggregate"]["run_cycles"]
        assert "simulate" in report_doc["host"]

    def test_no_metrics_flag(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        code = main(["--workload", "stream", "--threads", "4",
                     "--size", "256", "--no-metrics"])
        assert code == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["metrics"] == {}

    def test_fft_workload(self, capsys):
        from repro.telemetry.__main__ import main

        code = main(["--workload", "fft", "--threads", "4",
                     "--size", "64"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["results"]["verified"] is True
        assert doc["workload"] == "fft"


# ---------------------------------------------------------------------------
# Experiments runner --json
# ---------------------------------------------------------------------------
class TestExperimentsJson:
    def test_run_json_output(self, tmp_path, capsys):
        from repro.experiments.runner import main

        path = tmp_path / "results.json"
        code = main(["run", "table2", "--quick", "--json", str(path)])
        assert code == 0
        capsys.readouterr()  # swallow the text report
        data = json.loads(path.read_text())
        assert "table2" in data
        entry = data["table2"]
        assert entry["experiment_id"] == "table2"
        assert entry["quick"] is True
        assert isinstance(entry["measurements"], dict)


# ---------------------------------------------------------------------------
# System reports: pdes/sampling blocks and partially-idle chips
# ---------------------------------------------------------------------------
class TestSystemReport:
    def _system(self, n_chips: int = 2):
        from repro.system.multichip import MultiChipSystem
        from repro.system.topology import Topology

        return MultiChipSystem(Topology(n_chips, 1, 1))

    def test_no_pdes_stats_builds_clean_report(self):
        from repro.telemetry.report import build_system_report

        system = self._system()
        assert getattr(system, "pdes_stats", None) is None
        report = build_system_report(system, "idle")
        assert report.workload == "idle"
        assert "sampling" not in report.results
        assert not any(k.startswith("pdes.")
                       for k in report.metrics.get("counters", {}))

    def test_empty_sampling_stats_leave_report_untouched(self):
        from repro.telemetry.report import build_system_report

        system = self._system()
        system.sampling_stats = {}
        report = build_system_report(system, "idle")
        assert "sampling" not in report.results
        assert "sampling.units" not in report.metrics.get("gauges", {})

    def test_populated_sampling_stats_publish_metrics(self):
        from repro.telemetry.report import build_system_report

        system = self._system()
        system.sampling_stats = {
            "n_units": 3, "estimated_cycles": 9000, "ci_halfwidth": 120.0,
            "cpi_mean": 0.25, "detailed_cycles": 2000,
            "warmup_insns": 512, "measured_insns": 256, "ff_insns": 7000,
            "measured_error": -0.004,
        }
        report = build_system_report(system, "sampled-harness")
        assert report.results["sampling"]["estimated_cycles"] == 9000
        gauges = report.metrics["gauges"]
        assert gauges["sampling.units"] == 3
        assert gauges["sampling.measured_error"] == pytest.approx(-0.004)
        counters = report.metrics["counters"]
        assert counters["sampling.fastforward_insns"] == 7000

    def test_mixed_chips_with_and_without_harvested_counters(self):
        from repro.telemetry.report import build_system_report

        system = self._system(n_chips=2)
        tu = system.chips[0].threads[0]
        tu.counters.instructions = 7
        tu.counters.run_cycles = 3
        report = build_system_report(system, "mixed")
        # Only the chip that actually ran contributes thread rows, keyed
        # chip:tid; the idle chip's all-zero threads are skipped.
        assert set(report.threads) == {"0:0"}
        assert report.aggregate["instructions"] == 7
        assert report.aggregate["run_cycles"] == 3


# ---------------------------------------------------------------------------
# Chip reports for sampled runs
# ---------------------------------------------------------------------------
class TestSampledChipReport:
    def _sampled_interp(self):
        from repro.isa import Interpreter
        from repro.isa.kernels import (stream_kernel_program,
                                       stream_register_setup)
        from repro.memory.address import make_effective
        from repro.memory.interest_groups import IG_ALL
        from repro.sampling import SamplingConfig

        chip = Chip()
        interp = Interpreter(chip, model_fetch=False)
        program = stream_kernel_program("triad", 1)
        n = 600
        for t in range(4):
            src, src2, dst = (0x10000 + t * 0x4000, 0x100000 + t * 0x4000,
                              0x200000 + t * 0x4000)
            chip.memory.backing.f64_view(src, n)[:] = 1.0
            chip.memory.backing.f64_view(src2, n)[:] = 3.0
            regs, doubles = stream_register_setup(
                "triad", make_effective(src, IG_ALL),
                make_effective(src2, IG_ALL), make_effective(dst, IG_ALL),
                n)
            interp.add_thread(t, program, regs, doubles)
        config = SamplingConfig(warmup_insns=64, measure_insns=64,
                                period_insns=512, chunk_insns=256)
        return chip, interp, interp.run_sampled(config)

    def test_build_report_records_estimate_and_measured_error(self):
        from repro.telemetry.report import build_report

        chip, interp, estimate = self._sampled_interp()
        registry = MetricsRegistry()
        report = build_report(chip, "stream-sampled", registry=registry,
                              sampling=estimate, golden_cycles=10000)
        assert report.elapsed_cycles == estimate.estimated_cycles
        stats = report.results["sampling"]
        assert stats["golden_cycles"] == 10000
        assert stats["measured_error"] == pytest.approx(
            (estimate.estimated_cycles - 10000) / 10000)
        assert report.metrics["gauges"]["sampling.estimated_cycles"] \
            == estimate.estimated_cycles

    def test_build_report_without_golden_has_no_measured_error(self):
        from repro.telemetry.report import build_report

        chip, interp, estimate = self._sampled_interp()
        report = build_report(chip, "stream-sampled", sampling=estimate)
        stats = report.results["sampling"]
        assert "measured_error" not in stats
        assert "golden_cycles" not in stats
        assert stats["n_units"] == estimate.n_units
