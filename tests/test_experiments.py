"""Tests for the experiment drivers (quick mode) and the CLI runner."""

import json

import pytest

from repro.errors import CyclopsError
from repro.experiments import REGISTRY, get_experiment
from repro.experiments.runner import main


class TestRegistry:
    def test_all_artifacts_registered(self):
        assert set(REGISTRY) >= {
            "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
        }
        assert "family" in REGISTRY  # the extension sweep
        # The exploration families (docs/exploration.md).
        assert {"saturation", "bandwidth", "contention"} <= set(REGISTRY)

    def test_unknown_experiment(self):
        with pytest.raises(CyclopsError):
            get_experiment("fig99")

    def test_experiments_md_catalog_matches_registry(self):
        """EXPERIMENTS.md's catalog lists exactly the registered ids."""
        import pathlib
        import re

        text = pathlib.Path(__file__).parent.parent.joinpath(
            "EXPERIMENTS.md").read_text(encoding="utf-8")
        catalog = text.split("## Experiment catalog", 1)[1].split("\n## ", 1)[0]
        listed = set(re.findall(r"^\| `([a-z0-9]+)` \|", catalog,
                                flags=re.MULTILINE))
        assert listed == set(REGISTRY)


class TestQuickRuns:
    """Each driver must complete in quick mode with a sane report."""

    def test_table1(self):
        report = get_experiment("table1")(quick=True)
        assert report.measurements["all_group_imbalance"] < 1.5
        assert len(report.tables) == 2

    def test_table2_exact_latencies(self):
        report = get_experiment("table2")(quick=True)
        assert report.measurements["mismatches"] == 0

    def test_fig3(self):
        report = get_experiment("fig3")(quick=True)
        assert len(report.series) == 6
        for series in report.series:
            assert series.y[0] == pytest.approx(1.0)

    def test_fig4(self):
        report = get_experiment("fig4")(quick=True)
        assert len(report.series) == 8  # 4 kernels x 2 panels

    def test_fig5(self):
        report = get_experiment("fig5")(quick=True)
        m = report.measurements
        assert m["best_local_gb_s"] > 0

    def test_fig6(self):
        report = get_experiment("fig6")(quick=True)
        labels = {s.label for s in report.series}
        assert any(l.startswith("cyclops") for l in labels)
        assert any(l.startswith("origin") for l in labels)

    def test_fig7(self):
        report = get_experiment("fig7")(quick=True)
        assert len(report.tables) == 2

    def test_sampling(self):
        report = get_experiment("sampling")(quick=True)
        m = report.measurements
        assert abs(m["worst_error_pct"]) <= 2.0
        assert m["stream_state_matches"] == 1.0
        assert m["fft_state_matches"] == 1.0
        assert m["stream_speedup"] > 1.0
        assert not any(n.startswith(("TOLERANCE", "STATE"))
                       for n in report.notes)

    def test_render_is_text(self):
        report = get_experiment("table1")(quick=True)
        text = report.render()
        assert "table1" in text
        assert "Paper:" in text


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table2" in out

    def test_run_one(self, capsys):
        assert main(["run", "table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Interest group" in out

    def test_run_writes_files(self, tmp_path, capsys):
        assert main(["run", "table2", "--quick", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "table2.txt").exists()

    def test_unknown_id_exits_2_listing_known(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err
        # The known ids are printed so the user can correct the typo.
        assert "table2" in err and "fig7" in err

    def test_bad_worker_count_exits_2(self, capsys):
        assert main(["run", "table2", "-j", "0"]) == 2
        assert "-j must be >= 1" in capsys.readouterr().err

    def test_sampled_flag_rejects_jobs_and_serve(self, capsys):
        assert main(["run", "table2", "--sampled", "-j", "2"]) == 2
        assert "--sampled requires serial" in capsys.readouterr().err
        assert main(["run", "table2", "--sampled",
                     "--serve", "http://127.0.0.1:1"]) == 2
        assert "--sampled" in capsys.readouterr().err

    def test_sampled_flag_sets_and_restores_env(self, capsys, monkeypatch):
        import os

        from repro.experiments import registry, runner
        from repro.experiments.registry import ExperimentReport

        seen = {}

        def probe(quick=False):
            seen["env"] = os.environ.get("CYCLOPS_SAMPLE")
            return ExperimentReport(experiment_id="probe", title="p",
                                    paper="p")

        fake = {"probe": probe}
        monkeypatch.setattr(registry, "REGISTRY", fake)
        monkeypatch.setattr(runner, "REGISTRY", fake)
        monkeypatch.delenv("CYCLOPS_SAMPLE", raising=False)
        assert main(["run", "probe", "--sampled", "period=16384"]) == 0
        capsys.readouterr()
        assert seen["env"] == "period=16384"
        assert "CYCLOPS_SAMPLE" not in os.environ

    def test_run_all_reports_failures_at_end(self, capsys, monkeypatch):
        """One broken driver no longer aborts the whole batch."""
        from repro.experiments import registry, runner

        calls = []

        def broken(quick=False):
            calls.append("broken")
            raise RuntimeError("induced driver failure")

        def healthy(quick=False):
            calls.append("healthy")
            return registry.ExperimentReport(
                experiment_id="zz_ok", title="ok", paper="-")

        fake = {"aa_broken": broken, "zz_ok": healthy}
        monkeypatch.setattr(registry, "REGISTRY", fake)
        monkeypatch.setattr(runner, "REGISTRY", fake)
        assert main(["run", "all", "--quick"]) == 1
        captured = capsys.readouterr()
        # The failing driver ran first yet the healthy one still ran.
        assert calls == ["broken", "healthy"]
        assert "zz_ok" in captured.out
        assert "1 of 2" in captured.err and "aa_broken" in captured.err
        assert "induced driver failure" in captured.err


class TestRunnerJobsMode:
    """The -j path: pooled execution, caching, and diffable JSON."""

    def test_quick_json_omits_elapsed(self, tmp_path, capsys):
        path = tmp_path / "quick.json"
        assert main(["run", "table2", "--quick", "--json", str(path)]) == 0
        capsys.readouterr()
        entry = json.loads(path.read_text())["table2"]
        assert "elapsed_seconds" not in entry
        assert entry["quick"] is True

    def test_full_json_keeps_elapsed(self, tmp_path, capsys):
        path = tmp_path / "full.json"
        # table2 is latency microbenchmarks — fast even at full scale.
        assert main(["run", "table2", "--json", str(path)]) == 0
        capsys.readouterr()
        entry = json.loads(path.read_text())["table2"]
        assert entry["elapsed_seconds"] >= 0
        assert entry["quick"] is False

    def test_jobs_mode_matches_serial_and_caches(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_CACHE_DIR",
                           str(tmp_path / "cache"))
        serial = tmp_path / "serial.json"
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        assert main(["run", "table2", "--quick", "--json",
                     str(serial)]) == 0
        assert main(["run", "table2", "--quick", "-j", "2", "--json",
                     str(cold)]) == 0
        assert main(["run", "table2", "--quick", "-j", "2", "--json",
                     str(warm)]) == 0
        capsys.readouterr()
        serial_doc = json.loads(serial.read_text())
        cold_doc = json.loads(cold.read_text())
        warm_doc = json.loads(warm.read_text())
        assert serial_doc["table2"] == cold_doc["table2"] \
            == warm_doc["table2"]
        assert cold_doc["_jobs"]["cache_hits"] == 0
        assert warm_doc["_jobs"]["cache_hits"] \
            == warm_doc["_jobs"]["submitted"]
