"""Tests for the experiment drivers (quick mode) and the CLI runner."""

import pytest

from repro.errors import CyclopsError
from repro.experiments import REGISTRY, get_experiment
from repro.experiments.runner import main


class TestRegistry:
    def test_all_artifacts_registered(self):
        assert set(REGISTRY) >= {
            "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
        }
        assert "family" in REGISTRY  # the extension sweep

    def test_unknown_experiment(self):
        with pytest.raises(CyclopsError):
            get_experiment("fig99")


class TestQuickRuns:
    """Each driver must complete in quick mode with a sane report."""

    def test_table1(self):
        report = get_experiment("table1")(quick=True)
        assert report.measurements["all_group_imbalance"] < 1.5
        assert len(report.tables) == 2

    def test_table2_exact_latencies(self):
        report = get_experiment("table2")(quick=True)
        assert report.measurements["mismatches"] == 0

    def test_fig3(self):
        report = get_experiment("fig3")(quick=True)
        assert len(report.series) == 6
        for series in report.series:
            assert series.y[0] == pytest.approx(1.0)

    def test_fig4(self):
        report = get_experiment("fig4")(quick=True)
        assert len(report.series) == 8  # 4 kernels x 2 panels

    def test_fig5(self):
        report = get_experiment("fig5")(quick=True)
        m = report.measurements
        assert m["best_local_gb_s"] > 0

    def test_fig6(self):
        report = get_experiment("fig6")(quick=True)
        labels = {s.label for s in report.series}
        assert any(l.startswith("cyclops") for l in labels)
        assert any(l.startswith("origin") for l in labels)

    def test_fig7(self):
        report = get_experiment("fig7")(quick=True)
        assert len(report.tables) == 2

    def test_render_is_text(self):
        report = get_experiment("table1")(quick=True)
        text = report.render()
        assert "table1" in text
        assert "Paper:" in text


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table2" in out

    def test_run_one(self, capsys):
        assert main(["run", "table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Interest group" in out

    def test_run_writes_files(self, tmp_path, capsys):
        assert main(["run", "table2", "--quick", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "table2.txt").exists()

    def test_unknown_id_raises(self):
        with pytest.raises(CyclopsError):
            main(["run", "nope"])
