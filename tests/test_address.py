"""Tests for effective/physical addressing, interleaving, bank remap."""

import pytest
from hypothesis import given, strategies as st

from repro.config import ChipConfig
from repro.errors import AddressError, MemoryFault
from repro.memory.address import (
    AddressMap,
    check_alignment,
    line_address,
    make_effective,
    split_effective,
)


class TestEffectiveAddresses:
    def test_roundtrip(self):
        ea = make_effective(0x123456, 0xAB)
        assert split_effective(ea) == (0xAB, 0x123456)

    def test_ig_byte_occupies_top_8_bits(self):
        assert make_effective(0, 0xFF) == 0xFF000000
        assert make_effective(0xFFFFFF, 0) == 0x00FFFFFF

    def test_physical_out_of_range(self):
        with pytest.raises(AddressError):
            make_effective(1 << 24, 0)

    def test_ig_out_of_range(self):
        with pytest.raises(AddressError):
            make_effective(0, 256)

    def test_split_rejects_wide_values(self):
        with pytest.raises(AddressError):
            split_effective(1 << 32)

    @given(st.integers(0, (1 << 24) - 1), st.integers(0, 255))
    def test_roundtrip_property(self, phys, ig):
        assert split_effective(make_effective(phys, ig)) == (ig, phys)


class TestLineAddress:
    def test_aligns_down(self):
        assert line_address(0x7F, 64) == 0x40
        assert line_address(0x40, 64) == 0x40
        assert line_address(0x3F, 64) == 0

    @given(st.integers(0, (1 << 24) - 1))
    def test_always_aligned(self, phys):
        assert line_address(phys, 64) % 64 == 0
        assert 0 <= phys - line_address(phys, 64) < 64


class TestAlignment:
    def test_accepts_natural_alignment(self):
        check_alignment(0, 8)
        check_alignment(8, 8)
        check_alignment(4, 4)

    def test_rejects_misaligned(self):
        with pytest.raises(AddressError):
            check_alignment(4, 8)

    def test_rejects_odd_sizes(self):
        with pytest.raises(AddressError):
            check_alignment(0, 3)


class TestAddressMap:
    def test_interleaves_at_64_bytes(self):
        amap = AddressMap(ChipConfig.paper())
        assert amap.bank_of(0) == 0
        assert amap.bank_of(63) == 0
        assert amap.bank_of(64) == 1
        assert amap.bank_of(64 * 16) == 0  # wraps around 16 banks

    def test_max_memory_is_8mb(self):
        amap = AddressMap(ChipConfig.paper())
        assert amap.max_memory == 8 * 1024 * 1024

    def test_all_banks_used_uniformly(self):
        amap = AddressMap(ChipConfig.paper())
        counts = {}
        for addr in range(0, 64 * 64, 64):
            counts[amap.bank_of(addr)] = counts.get(amap.bank_of(addr), 0) + 1
        assert all(c == 4 for c in counts.values())
        assert len(counts) == 16

    def test_out_of_range_access(self):
        amap = AddressMap(ChipConfig.paper())
        with pytest.raises(MemoryFault):
            amap.bank_of(8 * 1024 * 1024)

    def test_banks_of_range(self):
        amap = AddressMap(ChipConfig.paper())
        assert amap.banks_of_range(0, 64) == [0]
        assert amap.banks_of_range(0, 65) == [0, 1]
        assert amap.banks_of_range(56, 8) == [0]
        assert amap.banks_of_range(60, 8) == [0, 1]  # straddles the boundary


class TestBankFailureRemap:
    def test_disable_shrinks_contiguous_space(self):
        amap = AddressMap(ChipConfig.paper())
        amap.disable_bank(5)
        assert amap.max_memory == 15 * 512 * 1024
        assert 5 not in amap.enabled_banks

    def test_survivors_carry_interleave(self):
        amap = AddressMap(ChipConfig.paper())
        amap.disable_bank(0)
        banks = {amap.bank_of(addr) for addr in range(0, 64 * 32, 64)}
        assert banks == set(range(1, 16))

    def test_space_stays_contiguous(self):
        amap = AddressMap(ChipConfig.paper())
        amap.disable_bank(7)
        # Every address below the new max resolves without fault.
        step = 512 * 1024
        for addr in range(0, amap.max_memory, step):
            amap.bank_of(addr)
        with pytest.raises(MemoryFault):
            amap.bank_of(amap.max_memory)

    def test_cannot_disable_twice(self):
        amap = AddressMap(ChipConfig.paper())
        amap.disable_bank(3)
        with pytest.raises(MemoryFault):
            amap.disable_bank(3)

    def test_cannot_disable_last(self):
        amap = AddressMap(ChipConfig.small(n_memory_banks=1))
        with pytest.raises(MemoryFault):
            amap.disable_bank(0)
