"""Strict-incoherence mode: the paper's software-managed coherence story.

"When using the interest group zero, each thread accessing that data will
bring it into its own cache, resulting in a potentially non-coherent
system. Without coherence support in hardware, it is up to user level
code to guarantee that this potential replication is done correctly."
"""

import pytest

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL, IG_OWN


@pytest.fixture
def chip():
    return Chip(ChipConfig.paper(), strict_incoherence=True)


class TestOwnGroupReplication:
    def test_stale_read_after_remote_write(self, chip):
        ea = make_effective(0x1000, IG_OWN)
        chip.memory.store_f64(0, 0, ea, 5.0)      # quad 0's copy
        chip.memory.load_f64(10, 9, ea)           # quad 9 pulls its copy
        chip.memory.store_f64(20, 0, ea, 7.0)     # quad 0 updates its copy
        _, stale = chip.memory.load_f64(30, 9, ea)
        _, fresh = chip.memory.load_f64(40, 0, ea)
        assert fresh == 7.0
        assert stale != 7.0  # quad 9 still sees its old copy

    def test_flush_propagates(self, chip):
        ea = make_effective(0x2000, IG_OWN)
        chip.memory.load_f64(0, 9, ea)
        chip.memory.store_f64(10, 0, ea, 3.5)
        # Software coherence: writer flushes, reader invalidates.
        chip.memory.flush_cache(0)
        line = 0x2000 - 0x2000 % 64
        chip.memory.caches[9].invalidate(line)
        _, value = chip.memory.load_f64(50, 9, ea)
        assert value == 3.5

    def test_replicated_read_only_is_safe(self, chip):
        """The intended use: shared constants replicated per quad."""
        chip.memory.backing.store_f64(0x3000, 2.75)
        ea = make_effective(0x3000, IG_OWN)
        values = set()
        for quad in range(8):
            _, v = chip.memory.load_f64(quad * 10, quad, ea)
            values.add(v)
        assert values == {2.75}
        # All eight quads now hold the line locally (replication).
        line = 0x3000 - 0x3000 % 64
        holders = sum(1 for c in chip.memory.caches if c.probe(line))
        assert holders == 8


class TestAllGroupStaysCoherent:
    def test_single_home_no_staleness(self, chip):
        """Non-zero interest groups map an address to exactly one cache,
        so 'the cache coherence problem does not arise'."""
        ea = make_effective(0x4000, IG_ALL)
        chip.memory.store_f64(0, 0, ea, 1.25)
        for quad in (3, 17, 31):
            _, value = chip.memory.load_f64(100 + quad, quad, ea)
            assert value == 1.25

    def test_writeback_on_eviction_reaches_memory(self, chip):
        ea = make_effective(0x5000, IG_ALL)
        chip.memory.store_f64(0, 0, ea, 9.0)
        home = chip.memory.target_cache(IG_ALL, 0x5000, 0)
        chip.memory.flush_cache(home)
        assert chip.memory.backing.load_f64(0x5000) == 9.0


class TestStrictModeEndToEnd:
    def test_parallel_kernel_with_explicit_flushes(self):
        """A full multithreaded kernel in strict mode: values travel
        through the per-line buffers, and an end-of-run flush makes them
        visible in memory — the software-coherence discipline."""
        from repro.runtime.kernel import Kernel
        from repro.memory.interest_groups import IG_ALL

        chip = Chip(ChipConfig.paper(), strict_incoherence=True)
        kernel = Kernel(chip)
        n = 128
        src = kernel.heap.alloc_f64_array(n)
        dst = kernel.heap.alloc_f64_array(n)
        chip.memory.backing.f64_view(src, n)[:] = range(n)
        # Pre-fill has to be visible to the caches: they fetch from
        # backing on miss, so nothing else is needed for the source.

        def body(ctx, lo, hi):
            for i in range(lo, hi):
                t, v = yield from ctx.load_f64(
                    ctx.ea(src + 8 * i, IG_ALL))
                yield from ctx.store_f64(ctx.ea(dst + 8 * i, IG_ALL),
                                         2 * v, deps=(t,))

        for t in range(4):
            kernel.spawn(body, t * 32, (t + 1) * 32)
        kernel.run()
        # Dirty destination lines still live in the caches.
        for cache_id in range(chip.config.n_dcaches):
            chip.memory.flush_cache(cache_id)
        out = chip.memory.backing.f64_view(dst, n)
        assert list(out) == [2.0 * i for i in range(n)]


class TestDefaultModeIsFunctionallyCoherent:
    def test_plain_chip_never_goes_stale(self):
        """The default (fast) mode keeps values in the backing store:
        correct programs behave identically, only strict mode models
        stale bytes."""
        chip = Chip()
        ea = make_effective(0x1000, IG_OWN)
        chip.memory.load_f64(0, 9, ea)
        chip.memory.store_f64(10, 0, ea, 7.0)
        _, value = chip.memory.load_f64(30, 9, ea)
        assert value == 7.0
