"""Tests for the kernel runtime: heap, thread allocation policies,
spawn/join, direct-execution contexts, barriers, locks."""

import pytest

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.errors import AllocationError, BarrierError, KernelError, WorkloadError
from repro.memory.interest_groups import IG_ALL, IG_OWN
from repro.runtime.heap import BumpHeap
from repro.runtime.kernel import AllocationPolicy, Kernel
from repro.runtime.locks import SpinLock


def make_kernel(policy=AllocationPolicy.SEQUENTIAL, config=None):
    return Kernel(Chip(config or ChipConfig.paper()), policy)


class TestBumpHeap:
    def test_alloc_advances(self):
        heap = BumpHeap(0, 1024)
        a = heap.alloc(100)
        b = heap.alloc(100)
        assert b >= a + 100

    def test_default_cache_line_alignment(self):
        heap = BumpHeap(0, 4096, default_align=64)
        heap.alloc(10)
        assert heap.alloc(10) % 64 == 0

    def test_explicit_alignment(self):
        heap = BumpHeap(0, 4096)
        assert heap.alloc(10, align=256) % 256 == 0

    def test_exhaustion(self):
        heap = BumpHeap(0, 128)
        heap.alloc(100, align=1)
        with pytest.raises(AllocationError):
            heap.alloc(100, align=1)

    def test_bad_alignment(self):
        with pytest.raises(AllocationError):
            BumpHeap(0, 128).alloc(8, align=3)

    def test_negative_size(self):
        with pytest.raises(AllocationError):
            BumpHeap(0, 128).alloc(-1)

    def test_reset_recycles(self):
        heap = BumpHeap(0, 128)
        first = heap.alloc(64, align=1)
        heap.reset()
        assert heap.alloc(64, align=1) == first

    def test_f64_array(self):
        heap = BumpHeap(0, 1024)
        base = heap.alloc_f64_array(16)
        assert base % 64 == 0
        assert heap.used >= 128


class TestAllocationPolicies:
    def test_sequential_fills_quads_in_order(self):
        """Paper: threads 0-3 in quad 0, 4-7 in quad 1, ..."""
        kernel = make_kernel(AllocationPolicy.SEQUENTIAL)
        tids = [kernel.hw_tid_for_slot(i) for i in range(8)]
        assert tids == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_balanced_strides_across_quads(self):
        """Paper: threads 0,32,64,96 in quad 0; 1,33,65,97 in quad 1..."""
        kernel = make_kernel(AllocationPolicy.BALANCED)
        tids = [kernel.hw_tid_for_slot(i) for i in range(33)]
        assert tids[:32] == [4 * q for q in range(32)]
        assert tids[32] == 1  # second lane starts

    def test_126_usable_threads(self):
        assert make_kernel().max_software_threads == 126

    def test_reserved_threads_never_allocated(self):
        kernel = make_kernel()
        all_tids = {kernel.hw_tid_for_slot(i) for i in range(126)}
        assert 126 not in all_tids
        assert 127 not in all_tids

    def test_balanced_partial_occupancy_spreads_quads(self):
        """With 32 threads balanced, every quad has exactly one."""
        kernel = make_kernel(AllocationPolicy.BALANCED)
        quads = [kernel.hw_tid_for_slot(i) // 4 for i in range(32)]
        assert sorted(quads) == list(range(32))

    def test_sequential_partial_occupancy_packs_quads(self):
        kernel = make_kernel(AllocationPolicy.SEQUENTIAL)
        quads = [kernel.hw_tid_for_slot(i) // 4 for i in range(32)]
        assert sorted(set(quads)) == list(range(8))

    def test_slot_out_of_range(self):
        with pytest.raises(KernelError):
            make_kernel().hw_tid_for_slot(126)


class TestSpawnJoinRun:
    def test_result_captured(self):
        kernel = make_kernel()

        def body(ctx):
            ctx.charge_ops(10)
            return "done"
            yield  # pragma: no cover - makes this a generator

        thread = kernel.spawn(body)
        kernel.run()
        assert thread.result == "done"
        assert thread.done
        assert thread.finish_time == 10

    def test_too_many_threads(self):
        kernel = make_kernel()

        def body(ctx):
            yield ctx.time

        for _ in range(126):
            kernel.spawn(body)
        with pytest.raises(KernelError):
            kernel.spawn(body)

    def test_worker_side_join(self):
        kernel = make_kernel()
        log = []

        def worker(ctx):
            ctx.charge_ops(500)
            yield ctx.time
            return 42

        def boss(ctx, target):
            value = yield from kernel.join(target, ctx)
            log.append((value, ctx.time))

        w = kernel.spawn(worker)
        kernel.spawn(boss, w)
        kernel.run()
        assert log == [(42, 500)]

    def test_join_finished_thread(self):
        kernel = make_kernel()

        def quick(ctx):
            return 7
            yield  # pragma: no cover

        def late(ctx, target):
            ctx.charge_ops(1000)
            yield ctx.time
            value = yield from kernel.join(target, ctx)
            return value

        q = kernel.spawn(quick)
        l = kernel.spawn(late, q)
        kernel.run()
        assert l.result == 7

    def test_elapsed_cycles(self):
        kernel = make_kernel()

        def body(ctx):
            ctx.charge_ops(100)
            return None
            yield  # pragma: no cover

        kernel.spawn(body)
        kernel.run()
        assert kernel.elapsed_cycles() == 100

    def test_seconds_conversion(self):
        kernel = make_kernel()
        assert kernel.seconds(500_000_000) == pytest.approx(1.0)

    def test_stacks_fit_below_memory_top(self):
        kernel = make_kernel()
        top = kernel.stack_base(127) + kernel.config.stack_bytes
        assert top == kernel.chip.memory.address_map.max_memory
        assert kernel.heap.limit <= kernel.stack_base(0)


class TestThreadCtxOps:
    def run_body(self, body, *args, config=None):
        kernel = make_kernel(config=config)
        thread = kernel.spawn(body, *args)
        kernel.run()
        return kernel, thread

    def test_load_store_roundtrip(self):
        def body(ctx):
            ea = ctx.ea(0x1000)
            yield from ctx.store_f64(ea, 1.25)
            t, v = yield from ctx.load_f64(ea)
            return v

        _, thread = self.run_body(body)
        assert thread.result == 1.25

    def test_dependence_chain_costs_latency(self):
        def body(ctx):
            t, _ = yield from ctx.load_f64(ctx.ea(0x1000))
            start = ctx.time
            t2 = yield from ctx.fp_add(deps=(t,))
            return t - start, ctx.tu.counters.stall_cycles

        _, thread = self.run_body(body)
        wait, stalls = thread.result
        assert stalls > 0  # the add waited on the load

    def test_independent_ops_overlap(self):
        def chained(ctx):
            t = 0
            for _ in range(10):
                t = yield from ctx.fp_add(deps=(t,))
            return ctx.time

        def overlapped(ctx):
            for _ in range(10):
                yield from ctx.fp_add()
            return ctx.time

        _, t1 = self.run_body(chained)
        _, t2 = self.run_body(overlapped)
        assert t2.result < t1.result

    def test_int_ops_do_not_yield(self):
        def body(ctx):
            t = ctx.int_alu()
            t = ctx.int_mul(deps=(t,))
            t = ctx.int_div(deps=(t,))
            ctx.branch(deps=(t,))
            return ctx.time
            yield  # pragma: no cover

        _, thread = self.run_body(body)
        # 1 + (1) + 33 + 2 execution; mul latency 5 stalls the divide.
        assert thread.result == 1 + 1 + 5 + 33 + 2

    def test_atomic_add(self):
        def body(ctx):
            ea = ctx.ea(0x100)
            yield from ctx.store_u32(ea, 5)
            t, old = yield from ctx.atomic_rmw_u32(ea, "add", 3)
            t, now = yield from ctx.load_u32(ea, deps=(t,))
            return old, now

        _, thread = self.run_body(body)
        assert thread.result == (5, 8)

    def test_charge_ops_bulk(self):
        def body(ctx):
            ctx.charge_ops(100)
            return ctx.tu.counters.instructions
            yield  # pragma: no cover

        _, thread = self.run_body(body)
        assert thread.result == 100

    def test_fpu_shared_within_quad(self):
        """Two threads in one quad contend for the FPU adder."""
        kernel = make_kernel()

        def body(ctx):
            for _ in range(50):
                yield from ctx.fp_add()
            return ctx.time

        a = kernel.spawn(body)  # hw 0, quad 0
        b = kernel.spawn(body)  # hw 1, quad 0
        kernel.run()
        # 100 adds through one pipelined adder need >= 100 cycles.
        assert max(a.result, b.result) >= 100

    def test_different_quads_do_not_contend(self):
        kernel = make_kernel(AllocationPolicy.BALANCED)

        def body(ctx):
            for _ in range(50):
                yield from ctx.fp_add()
            return ctx.time

        a = kernel.spawn(body)  # quad 0
        b = kernel.spawn(body)  # quad 1
        kernel.run()
        assert max(a.result, b.result) <= 60

    def test_scratchpad_roundtrip(self):
        def body(ctx):
            ctx.memory.caches[0].set_scratchpad_ways(2)
            yield from ctx.scratchpad_f64(0, 16, True, value=9.5)
            t, v = yield from ctx.scratchpad_f64(0, 16, False)
            return v

        _, thread = self.run_body(body)
        assert thread.result == 9.5

    def test_spin_until_sees_store(self):
        kernel = make_kernel()
        flag = kernel.heap.alloc(64)

        def waiter(ctx):
            t, v = yield from ctx.spin_until(ctx.ea(flag), lambda v: v == 1)
            return ctx.time

        def setter(ctx):
            ctx.charge_ops(300)
            yield from ctx.store_u32(ctx.ea(flag), 1)
            return ctx.time

        w = kernel.spawn(waiter)
        s = kernel.spawn(setter)
        kernel.run()
        assert w.result >= 300


class TestHardwareBarrierRuntime:
    def test_synchronizes_all(self):
        kernel = make_kernel()
        bar = kernel.hardware_barrier(0, 8)
        exits = []

        def body(ctx, delay):
            ctx.charge_ops(delay)
            yield from bar.wait(ctx)
            exits.append(ctx.time)

        for i in range(8):
            kernel.spawn(body, i * 37)
        kernel.run()
        assert max(exits) - min(exits) <= 3
        assert min(exits) >= 7 * 37

    def test_reusable_many_episodes(self):
        kernel = make_kernel()
        bar = kernel.hardware_barrier(1, 4)
        max_skew = 0

        def body(ctx, me):
            nonlocal max_skew
            for episode in range(5):
                ctx.charge_ops((me * 13 + episode * 7) % 50)
                yield from bar.wait(ctx)

        for i in range(4):
            kernel.spawn(body, i)
        kernel.run()
        assert bar.episodes == 5

    def test_wait_counts_as_full_speed_spin(self):
        """Paper: spinning on the SPR runs at full speed — run cycles, not
        stalls (this is why Figure 7's run-cycle bars are positive)."""
        kernel = make_kernel()
        bar = kernel.hardware_barrier(0, 2)

        def early(ctx):
            yield from bar.wait(ctx)
            c = ctx.tu.counters
            return c.run_cycles, c.stall_cycles

        def late(ctx):
            ctx.charge_ops(500)
            yield from bar.wait(ctx)
            c = ctx.tu.counters
            return c.run_cycles, c.stall_cycles

        e = kernel.spawn(early)
        l = kernel.spawn(late)
        kernel.run()
        early_run, early_stall = e.result
        assert early_run >= 499  # the whole wait was spent spinning
        assert early_stall <= 5
        late_run, _ = l.result
        assert late_run <= 505

    def test_bad_barrier_id(self):
        with pytest.raises(BarrierError):
            make_kernel().hardware_barrier(4, 2)

    def test_single_participant_is_trivial(self):
        kernel = make_kernel()
        bar = kernel.hardware_barrier(0, 1)

        def body(ctx):
            yield from bar.wait(ctx)
            return ctx.time

        thread = kernel.spawn(body)
        kernel.run()
        assert thread.result <= 3


class TestTreeBarrierRuntime:
    def test_synchronizes_all(self):
        kernel = make_kernel()
        bar = kernel.tree_barrier(8)
        exits = []

        def body(ctx, delay):
            ctx.charge_ops(delay)
            yield from bar.wait(ctx)
            exits.append(ctx.time)

        for i in range(8):
            kernel.spawn(body, i * 29)
        kernel.run()
        assert min(exits) >= 7 * 29

    def test_slower_than_hardware_barrier(self):
        """The motivating measurement for the hardware barrier."""
        def run(kind):
            kernel = make_kernel()
            bar = kernel.hardware_barrier(0, 16) if kind == "hw" \
                else kernel.tree_barrier(16)
            finish = []

            def body(ctx):
                yield from bar.wait(ctx)
                finish.append(ctx.time)

            for _ in range(16):
                kernel.spawn(body)
            kernel.run()
            return max(finish)

        assert run("hw") < run("sw")

    def test_reusable(self):
        kernel = make_kernel()
        bar = kernel.tree_barrier(4)
        done = []

        def body(ctx, me):
            for episode in range(3):
                ctx.charge_ops((me * 31) % 40)
                yield from bar.wait(ctx)
            done.append(me)

        for i in range(4):
            kernel.spawn(body, i)
        kernel.run()
        assert sorted(done) == [0, 1, 2, 3]


class TestSpinLock:
    def test_mutual_exclusion_counter(self):
        kernel = make_kernel()
        lock = SpinLock(kernel)
        counter = kernel.heap.alloc(64)

        def body(ctx):
            for _ in range(10):
                yield from lock.acquire(ctx)
                t, v = yield from ctx.load_u32(ctx.ea(counter))
                t2 = ctx.int_alu(deps=(t,))
                yield from ctx.store_u32(ctx.ea(counter), v + 1, deps=(t2,))
                yield from lock.release(ctx)

        for _ in range(8):
            kernel.spawn(body)
        kernel.run()
        assert kernel.chip.memory.backing.load_u32(counter) == 80
        assert lock.acquisitions == 80

    def test_contention_recorded(self):
        kernel = make_kernel()
        lock = SpinLock(kernel)

        def body(ctx):
            yield from lock.acquire(ctx)
            ctx.charge_ops(200)
            yield from lock.release(ctx)

        for _ in range(4):
            kernel.spawn(body)
        kernel.run()
        assert lock.contended_spins > 0
