"""Tests for the multi-chip collectives."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.system.collectives import all_reduce_sum, broadcast
from repro.system.multichip import MultiChipSystem
from repro.system.topology import Topology


def make_system(n_chips: int) -> MultiChipSystem:
    return MultiChipSystem(Topology(n_chips, 1, 1))


class TestBroadcast:
    @pytest.mark.parametrize("n_chips", [2, 3, 4, 5, 8])
    def test_payload_reaches_every_cell(self, n_chips):
        system = make_system(n_chips)
        physical = 0x1000
        payload = np.arange(16, dtype=np.float64)
        root = (0, 0, 0)
        system.chip_at(root).memory.backing.f64_view(physical, 16)[:] = \
            payload
        threads = broadcast(system, root, physical, 8 * 16)
        system.run()
        for i in range(n_chips):
            coord = system.topology.coord(i)
            view = system.chip_at(coord).memory.backing.f64_view(
                physical, 16)
            assert np.array_equal(view, payload), coord
        assert all(t.result for t in threads)

    def test_nonzero_root(self):
        system = make_system(4)
        physical = 0x2000
        root = (2, 0, 0)
        system.chip_at(root).memory.backing.store_f64(physical, 7.5)
        broadcast(system, root, physical, 8)
        system.run()
        for i in range(4):
            coord = system.topology.coord(i)
            assert system.chip_at(coord).memory.backing.load_f64(
                physical) == 7.5

    def test_pipeline_cost_is_one_transfer_per_hop(self):
        """Pipelined forwarding: each link carries the payload once, so
        the total grows linearly in the chain length with no link
        re-traversal."""
        def finish(n_chips):
            system = make_system(n_chips)
            threads = broadcast(system, (0, 0, 0), 0, 1024)
            system.run()
            return max(t.finish_time for t in threads)

        base = finish(2)  # one hop
        assert finish(8) <= 7 * base + 50
        assert finish(8) > finish(4) > base


class TestAllReduce:
    @pytest.mark.parametrize("n_chips", [2, 4, 8])
    def test_every_cell_gets_the_sum(self, n_chips):
        system = make_system(n_chips)
        physical = 0x3000
        count = 8
        expected = np.zeros(count)
        for i in range(n_chips):
            coord = system.topology.coord(i)
            values = np.arange(count, dtype=np.float64) + 100 * i
            system.chip_at(coord).memory.backing.f64_view(
                physical, count)[:] = values
            expected += values
        threads = all_reduce_sum(system, physical, count)
        system.run()
        for thread in threads:
            assert np.allclose(thread.result, expected)

    def test_power_of_two_required(self):
        system = make_system(3)
        with pytest.raises(WorkloadError):
            all_reduce_sum(system, 0, 4)

    def test_single_cell_is_identity(self):
        system = make_system(1)
        system.chip_at((0, 0, 0)).memory.backing.store_f64(0, 3.25)
        threads = all_reduce_sum(system, 0, 1)
        system.run()
        assert threads[0].result[0] == 3.25
