"""Functional tests for the macro-assembler utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chip import Chip
from repro.errors import AssemblerError
from repro.isa import Builder, Interpreter
from repro.isa.macros import (
    emit_barrier_wait,
    emit_memcpy,
    emit_memset,
    emit_spin_lock_acquire,
    emit_spin_lock_release,
    load_effective_address,
    load_immediate,
)
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL


def run(builder: Builder, chip=None, tid=0, init_regs=None):
    chip = chip or Chip()
    interp = Interpreter(chip, model_fetch=False)
    state = interp.add_thread(tid, builder.build(), init_regs)
    interp.run()
    return chip, state


class TestLoadImmediate:
    @pytest.mark.parametrize("value", [
        0, 1, 4095, 4096, 0xDEADBEEF, 0xFFFFFFFF, 0x00FF00FF, 1 << 31,
    ])
    def test_exact_value(self, value):
        b = Builder()
        load_immediate(b, 10, value)
        b.halt()
        _, state = run(b)
        assert state.regs.read(10) == value & 0xFFFFFFFF

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 0xFFFFFFFF))
    def test_property_any_32_bit_value(self, value):
        b = Builder()
        load_immediate(b, 10, value)
        b.halt()
        _, state = run(b)
        assert state.regs.read(10) == value


class TestLoadEffectiveAddress:
    @pytest.mark.parametrize("physical,ig", [
        (0, 0), (0x123456, 0xC0), (0xFFFFFF, 0xFF), (0x000FFF, 0x20),
    ])
    def test_matches_make_effective(self, physical, ig):
        b = Builder()
        load_effective_address(b, 10, physical, ig)
        b.halt()
        _, state = run(b)
        assert state.regs.read(10) == make_effective(physical, ig)

    def test_rejects_wide_physical(self):
        with pytest.raises(AssemblerError):
            load_effective_address(Builder(), 10, 1 << 24)

    def test_usable_as_load_address(self):
        chip = Chip()
        chip.memory.backing.store_u32(0x1234, 777)
        b = Builder()
        load_effective_address(b, 10, 0x1234, IG_ALL)
        b.lw(11, 0, base=10)
        b.halt()
        _, state = run(b, chip=chip)
        assert state.regs.read(11) == 777


class TestMemcpyMemset:
    def test_memcpy_copies_words(self):
        chip = Chip()
        for i in range(8):
            chip.memory.backing.store_u32(0x100 + 4 * i, i + 1)
        b = Builder()
        b.addi(4, 0, 0x100)   # src
        b.addi(5, 0, 0x200)   # dst
        b.addi(6, 0, 8)       # words
        emit_memcpy(b, dst_reg=5, src_reg=4, words_reg=6)
        b.halt()
        run(b, chip=chip)
        for i in range(8):
            assert chip.memory.backing.load_u32(0x200 + 4 * i) == i + 1

    def test_memset_fills(self):
        chip = Chip()
        b = Builder()
        b.addi(5, 0, 0x300)
        b.addi(6, 0, 4)
        b.addi(7, 0, 0xAB)
        emit_memset(b, dst_reg=5, value_reg=7, words_reg=6)
        b.halt()
        run(b, chip=chip)
        for i in range(4):
            assert chip.memory.backing.load_u32(0x300 + 4 * i) == 0xAB

    def test_zero_length_is_noop(self):
        chip = Chip()
        b = Builder()
        b.addi(5, 0, 0x400)
        b.addi(6, 0, 0)
        b.addi(7, 0, 9)
        emit_memset(b, dst_reg=5, value_reg=7, words_reg=6)
        b.halt()
        run(b, chip=chip)
        assert chip.memory.backing.load_u32(0x400) == 0


class TestAssemblySpinLock:
    def test_two_threads_serialize(self):
        """Two threads increment a counter under the assembly lock."""
        chip = Chip()
        lock_addr, counter = 0x500, 0x540

        def make_program():
            b = Builder()
            b.addi(4, 0, lock_addr)
            b.addi(5, 0, counter)
            for _ in range(20):
                emit_spin_lock_acquire(
                    b, lock_reg=4,
                    label_prefix=f"l{len(b._items)}")
                b.lw(10, 0, base=5)
                b.addi(10, 10, 1)
                b.sw(10, 0, base=5)
                emit_spin_lock_release(b, lock_reg=4)
            b.halt()
            return b.build()

        interp = Interpreter(chip, model_fetch=False)
        interp.add_thread(0, make_program())
        interp.add_thread(1, make_program())
        interp.run()
        assert chip.memory.backing.load_u32(counter) == 40


class TestAssemblyBarrier:
    def test_two_threads_synchronize(self):
        """The open-coded SPR protocol really synchronizes: the late
        thread's arrival releases the early spinner."""
        chip = Chip()
        # Both threads: participate (current bit = 1), optionally burn
        # time, then barrier-wait with phase 0.
        def make(delay: int):
            b = Builder()
            b.addi(20, 0, 1)
            b.mtspr(20, 0)         # participate: current bit
            for _ in range(delay):
                b.nop()
            emit_barrier_wait(b, phase=0)
            b.halt()
            return b.build()

        interp = Interpreter(chip, model_fetch=False)
        fast = interp.add_thread(0, make(0))
        slow = interp.add_thread(9, make(300))
        interp.run()
        # The fast thread cannot finish before the slow one arrived.
        assert fast.tu.issue_time >= 300
        assert slow.halted and fast.halted
