"""Tests for banks, backing store, switch, off-chip DMA, and the
composed memory subsystem (Table 2 latencies, Figure 2 paths)."""

import pytest

from repro.config import ChipConfig
from repro.errors import AddressError, MemoryFault
from repro.memory.address import make_effective
from repro.memory.backing import BackingStore
from repro.memory.bank import MemoryBank
from repro.memory.interest_groups import IG_ALL, IG_OWN, InterestGroup, Level
from repro.memory.subsystem import AccessKind, MemorySubsystem
from repro.memory.switch import CrossbarSwitch, build_cache_switch

CFG = ChipConfig.paper()


# ---------------------------------------------------------------------------
# Backing store
# ---------------------------------------------------------------------------
class TestBackingStore:
    def test_f64_roundtrip(self):
        b = BackingStore(1024)
        b.store_f64(8, 2.5)
        assert b.load_f64(8) == 2.5

    def test_u32_roundtrip(self):
        b = BackingStore(1024)
        b.store_u32(4, 0xDEADBEEF)
        assert b.load_u32(4) == 0xDEADBEEF

    def test_u32_wraps_modulo_32_bits(self):
        b = BackingStore(64)
        b.store_u32(0, 2**32 + 7)
        assert b.load_u32(0) == 7

    def test_misaligned_rejected(self):
        b = BackingStore(64)
        with pytest.raises(AddressError):
            b.load_f64(4)

    def test_out_of_range_rejected(self):
        b = BackingStore(64)
        with pytest.raises(MemoryFault):
            b.load_f64(64)

    def test_view_is_mutable(self):
        b = BackingStore(1024)
        view = b.f64_view(0, 4)
        view[:] = [1, 2, 3, 4]
        assert b.load_f64(16) == 3.0

    def test_block_roundtrip(self):
        b = BackingStore(256)
        b.write_block(10, b"abcdef")
        assert b.read_block(10, 6) == b"abcdef"

    def test_fill(self):
        b = BackingStore(64)
        b.store_u32(0, 5)
        b.fill(0)
        assert b.load_u32(0) == 0


# ---------------------------------------------------------------------------
# Banks
# ---------------------------------------------------------------------------
class TestMemoryBank:
    def test_burst_timing_matches_paper(self):
        bank = MemoryBank(0, CFG)
        assert bank.read_burst(0) == 12  # 64 bytes every 12 cycles
        assert bank.read_burst(0) == 24  # second burst queues

    def test_block_cheaper_than_burst_but_less_efficient(self):
        bank = MemoryBank(0, CFG)
        done = bank.read_block(0)
        assert done == CFG.block_cycles
        # bytes/cycle: burst 64/12 > block 32/8
        assert 64 / 12 > 32 / 8

    def test_traffic_counters(self):
        bank = MemoryBank(0, CFG)
        bank.read_burst(0)
        bank.write_burst(12)
        assert bank.bytes_read == 64
        assert bank.bytes_written == 64
        assert bank.bytes_total == 128

    def test_failed_bank_rejects_access(self):
        bank = MemoryBank(0, CFG)
        bank.fail()
        with pytest.raises(MemoryFault):
            bank.read_burst(0)

    def test_peak_bandwidth_41_7_gb_s(self):
        """16 banks x 64B/12cyc at 500 MHz is the paper's 42 GB/s peak."""
        per_bank_bytes_per_cycle = CFG.burst_bytes / CFG.burst_cycles
        total = per_bank_bytes_per_cycle * CFG.n_memory_banks * CFG.clock_hz
        assert total == pytest.approx(42.7e9, rel=0.01)


# ---------------------------------------------------------------------------
# Switch
# ---------------------------------------------------------------------------
class TestCrossbarSwitch:
    def test_port_moves_8_bytes_per_cycle(self):
        switch = build_cache_switch(CFG)
        assert switch.transfer(0, 0, 8) == 0
        assert switch.transfer(0, 0, 8) == 1  # port busy one cycle each

    def test_wide_transfer_occupies_longer(self):
        switch = CrossbarSwitch("s", 2, 8)
        switch.transfer(0, 0, 64)  # 8 cycles
        assert switch.transfer(0, 0, 8) == 8

    def test_ports_are_independent(self):
        switch = CrossbarSwitch("s", 2, 8)
        switch.transfer(0, 0, 8)
        assert switch.transfer(1, 0, 8) == 0

    def test_reset(self):
        switch = build_cache_switch(CFG)
        switch.transfer(0, 0, 8)
        switch.reset()
        assert switch.transfer(0, 0, 8) == 0


# ---------------------------------------------------------------------------
# Composed subsystem: Table 2 latencies
# ---------------------------------------------------------------------------
def fresh() -> MemorySubsystem:
    return MemorySubsystem(CFG)


class TestAccessLatencies:
    """Unloaded latencies must be exactly Table 2."""

    def test_local_miss_then_hit(self):
        ms = fresh()
        ig = InterestGroup(Level.ONE, 5).encode()
        ea = make_effective(0x2000, ig)
        miss = ms.access(0, 5, ea, 8, is_store=False)
        assert miss.kind is AccessKind.LOCAL_MISS
        assert miss.complete - miss.issue_end == 24
        hit = ms.access(100, 5, ea, 8, is_store=False)
        assert hit.kind is AccessKind.LOCAL_HIT
        assert hit.complete - hit.issue_end == 6

    def test_remote_miss_then_hit(self):
        ms = fresh()
        ig = InterestGroup(Level.ONE, 9).encode()
        ea = make_effective(0x3000, ig)
        miss = ms.access(0, 5, ea, 8, is_store=False)
        assert miss.kind is AccessKind.REMOTE_MISS
        assert miss.complete - miss.issue_end == 36
        hit = ms.access(100, 5, ea, 8, is_store=False)
        assert hit.kind is AccessKind.REMOTE_HIT
        assert hit.complete - hit.issue_end == 17

    def test_issue_occupies_one_cycle(self):
        ms = fresh()
        out = ms.access(0, 0, make_effective(0, IG_ALL), 8, is_store=False)
        assert out.issue_end == 1

    def test_access_ratio_local_remote_is_3x(self):
        """Paper: local cache access is ~3x faster (6 vs 17 cycles)."""
        assert CFG.latency.mem_remote_hit[1] / CFG.latency.mem_local_hit[1] \
            == pytest.approx(17 / 6)


class TestInterestGroupPlacement:
    def test_own_group_goes_local(self):
        ms = fresh()
        ea = make_effective(0x4000, IG_OWN)
        out = ms.access(0, 7, ea, 8, is_store=False)
        assert out.cache_id == 7
        assert out.kind is AccessKind.LOCAL_MISS

    def test_own_group_replicates_across_quads(self):
        ms = fresh()
        ea = make_effective(0x4000, IG_OWN)
        ms.access(0, 7, ea, 8, is_store=False)
        out = ms.access(50, 9, ea, 8, is_store=False)
        assert out.cache_id == 9
        assert out.kind is AccessKind.LOCAL_MISS  # its own copy, own miss
        assert ms.caches[7].probe(0x4000)
        assert ms.caches[9].probe(0x4000)

    def test_all_group_single_home(self):
        ms = fresh()
        ea = make_effective(0x5000, IG_ALL)
        first = ms.access(0, 0, ea, 8, is_store=False)
        second = ms.access(50, 31, ea, 8, is_store=False)
        assert first.cache_id == second.cache_id
        assert second.kind in (AccessKind.LOCAL_HIT, AccessKind.REMOTE_HIT)

    def test_pinned_group(self):
        ms = fresh()
        ig = InterestGroup(Level.ONE, 12).encode()
        out = ms.access(0, 3, make_effective(0x6000, ig), 8, is_store=False)
        assert out.cache_id == 12


class TestStoreMissPolicy:
    def test_write_validate_touches_no_bank(self):
        ms = fresh()
        ea = make_effective(0x7000, IG_ALL)
        ms.access(0, 0, ea, 8, is_store=True)
        assert ms.memory_traffic_bytes == 0

    def test_dirty_writeback_counts_traffic(self):
        ms = fresh()
        cache_id = ms.target_cache(IG_ALL, 0x7000, 0)
        cache = ms.caches[cache_id]
        ms.access(0, 0, make_effective(0x7000, IG_ALL), 8, is_store=True)
        # Force eviction of that dirty line by flushing.
        dirty = cache.flush()
        assert [addr for addr, _ in dirty] == [0x7000 & ~63]

    def test_fetch_on_store_miss_config(self):
        ms = MemorySubsystem(CFG.with_store_miss_fetch(True))
        ea = make_effective(0x7000, IG_ALL)
        out = ms.access(0, 0, ea, 8, is_store=True)
        assert ms.memory_traffic_bytes == 64
        assert out.complete > out.issue_end


class TestBankQueueing:
    def test_contention_adds_queue_delay(self):
        ms = fresh()
        # Two misses to lines in the same bank back to back.
        ig = InterestGroup(Level.ONE, 0).encode()
        interleave_span = CFG.interleave_bytes * CFG.n_memory_banks
        first = ms.access(0, 0, make_effective(0, ig), 8, False)
        second = ms.access(
            0, 0, make_effective(interleave_span, ig), 8, False
        )
        assert first.complete - first.issue_end == 24
        # The second fill waits for the first burst (12 cycles each).
        assert second.complete - second.issue_end > 24

    def test_different_banks_do_not_queue(self):
        ms = fresh()
        ig = InterestGroup(Level.ONE, 0).encode()
        ms.access(0, 0, make_effective(0, ig), 8, False)
        other = ms.access(0, 0, make_effective(CFG.interleave_bytes, ig), 8, False)
        assert other.complete - other.issue_end == 24


class TestInflightFills:
    def test_hit_on_inflight_line_waits_for_fill(self):
        ms = fresh()
        ig = InterestGroup(Level.ONE, 0).encode()
        ea = make_effective(0x8000, ig)
        miss = ms.access(0, 0, ea, 8, False)
        early_hit = ms.access(2, 0, ea, 8, False)
        assert early_hit.kind is AccessKind.LOCAL_HIT
        assert early_hit.complete >= miss.complete

    def test_hit_after_fill_is_normal(self):
        ms = fresh()
        ig = InterestGroup(Level.ONE, 0).encode()
        ea = make_effective(0x8000, ig)
        miss = ms.access(0, 0, ea, 8, False)
        late_hit = ms.access(miss.complete + 10, 0, ea, 8, False)
        assert late_hit.complete - late_hit.issue_end == 6


class TestAtomics:
    def test_rmw_semantics(self):
        ms = fresh()
        ea = make_effective(0x100, IG_ALL)
        ms.backing.store_u32(0x100, 10)
        out, old = ms.atomic_rmw_u32(0, 0, ea, "add", 5)
        assert old == 10
        assert ms.backing.load_u32(0x100) == 15

    def test_swap(self):
        ms = fresh()
        ea = make_effective(0x100, IG_ALL)
        _, old = ms.atomic_rmw_u32(0, 0, ea, "swap", 1)
        assert old == 0
        assert ms.backing.load_u32(0x100) == 1

    def test_and_or(self):
        ms = fresh()
        ea = make_effective(0x100, IG_ALL)
        ms.backing.store_u32(0x100, 0b1100)
        ms.atomic_rmw_u32(0, 0, ea, "and", 0b1010)
        assert ms.backing.load_u32(0x100) == 0b1000
        ms.atomic_rmw_u32(0, 0, ea, "or", 0b0001)
        assert ms.backing.load_u32(0x100) == 0b1001

    def test_unknown_op_rejected(self):
        ms = fresh()
        with pytest.raises(AddressError):
            ms.atomic_rmw_u32(0, 0, make_effective(0x100, IG_ALL), "xor", 1)


class TestScratchpadPath:
    def test_local_scratchpad_cost(self):
        ms = fresh()
        ms.caches[3].set_scratchpad_ways(2)
        out = ms.scratchpad_access(0, 3, 3, 8)
        assert out.kind is AccessKind.SCRATCHPAD
        assert out.complete - out.issue_end == 6

    def test_remote_scratchpad_cost(self):
        ms = fresh()
        ms.caches[3].set_scratchpad_ways(2)
        out = ms.scratchpad_access(0, 0, 3, 8)
        assert out.complete - out.issue_end == 17


class TestOffChip:
    def test_dma_roundtrip(self):
        ms = fresh()
        ms.offchip.poke(0, b"\x11" * 1024)
        done = ms.offchip.read_in(0, 0, 0x1000, 1, ms.backing, ms.banks,
                                  ms.address_map)
        assert done == CFG.offchip_block_cycles
        assert ms.backing.read_block(0x1000, 4) == b"\x11" * 4

    def test_dma_write_out(self):
        ms = fresh()
        ms.backing.write_block(0x2000, b"\x22" * 1024)
        ms.offchip.write_out(0, 0x2000, 4096, 1, ms.backing, ms.banks,
                             ms.address_map)
        assert ms.offchip.peek(4096, 4) == b"\x22" * 4

    def test_dma_occupies_banks(self):
        ms = fresh()
        before = ms.memory_traffic_bytes
        ms.offchip.read_in(0, 0, 0, 1, ms.backing, ms.banks, ms.address_map)
        assert ms.memory_traffic_bytes - before == 1024

    def test_unaligned_offset_rejected(self):
        ms = fresh()
        with pytest.raises(AddressError):
            ms.offchip.read_in(0, 100, 0, 1, ms.backing, ms.banks,
                               ms.address_map)

    def test_out_of_range_rejected(self):
        ms = fresh()
        with pytest.raises(MemoryFault):
            ms.offchip.peek(CFG.offchip_bytes, 1)


class TestReset:
    def test_reset_timing_clears_counters_keeps_tags(self):
        ms = fresh()
        ea = make_effective(0x9000, IG_ALL)
        ms.access(0, 0, ea, 8, False)
        ms.reset_timing()
        assert ms.memory_traffic_bytes == 0
        out = ms.access(0, 0, ea, 8, False)
        assert out.kind in (AccessKind.LOCAL_HIT, AccessKind.REMOTE_HIT)

    def test_cold_caches_drops_tags(self):
        ms = fresh()
        ea = make_effective(0x9000, IG_ALL)
        ms.access(0, 0, ea, 8, False)
        ms.cold_caches()
        ms.reset_timing()
        out = ms.access(0, 0, ea, 8, False)
        assert out.kind in (AccessKind.LOCAL_MISS, AccessKind.REMOTE_MISS)
