"""Tests for the run-comparison tool."""

import pytest

from repro.analysis.compare import compare_measurements


class TestCompareMeasurements:
    def test_identical_is_clean(self):
        report = compare_measurements({"a": 1.0, "b": 2.0},
                                      {"a": 1.0, "b": 2.0})
        assert report.clean
        assert len(report.unchanged) == 2

    def test_within_tolerance_ok(self):
        report = compare_measurements({"a": 100.0}, {"a": 105.0},
                                      tolerance=0.10)
        assert report.clean

    def test_drift_detected(self):
        report = compare_measurements({"a": 100.0}, {"a": 150.0},
                                      tolerance=0.10)
        assert not report.clean
        assert report.drifted[0].relative == pytest.approx(0.5)

    def test_missing_and_added(self):
        report = compare_measurements({"a": 1.0, "b": 1.0},
                                      {"b": 1.0, "c": 1.0})
        assert report.missing == ["a"]
        assert report.added == ["c"]
        assert not report.clean

    def test_zero_baseline(self):
        report = compare_measurements({"a": 0.0}, {"a": 1.0})
        assert not report.clean
        report2 = compare_measurements({"a": 0.0}, {"a": 0.0})
        assert report2.clean

    def test_render(self):
        report = compare_measurements({"a": 1.0, "b": 10.0},
                                      {"a": 2.0, "b": 10.0})
        text = report.render()
        assert "DRIFT" in text
        assert "ok" in text

    def test_repeat_experiment_is_clean(self):
        """Determinism at the report level: the same driver twice."""
        from repro.experiments import get_experiment
        first = get_experiment("table2")(quick=True)
        second = get_experiment("table2")(quick=True)
        report = compare_measurements(first.measurements,
                                      second.measurements,
                                      tolerance=0.0)
        assert report.clean
