"""Every example script must run to completion and verify its claims.

These are end-to-end integration tests: each example drives the public
API the way a downstream user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "dot product = 12288.0" in out
        assert "instructions" in out

    def test_stream_tuning(self):
        out = run_example("stream_tuning.py", "--threads", "16",
                          "--per-thread", "200")
        assert "+ 4-way unrolling" in out
        assert "verified=True" in out
        assert "GB/s" in out

    def test_fft_barriers(self):
        out = run_example("fft_barriers.py", "--points", "256",
                          "--threads", "8")
        assert "hw barrier" in out
        assert "verified=True" in out
        assert "delta %" in out

    def test_interest_groups(self):
        out = run_example("interest_groups.py")
        assert "stale copy" in out
        assert "after flush+invalidate quad 9 reads 1.0" in out

    def test_fault_tolerance(self):
        out = run_example("fault_tolerance.py")
        assert "degraded chip" in out
        assert "verified=True" in out
        assert "123 of 128" in out

    def test_assembly_kernel(self):
        out = run_example("assembly_kernel.py")
        assert "SAXPY of 256 doubles verified" in out
        assert "I-cache hit rate" in out

    def test_multichip_halo(self):
        out = run_example("multichip_halo.py", "--chips", "2",
                          "--band", "128", "--iterations", "2")
        assert "verified=True" in out
        assert "link bytes" in out

    def test_placement_study(self):
        out = run_example("placement_study.py")
        assert "interest group" in out
        assert "OWN" in out and "ALL" in out

    def test_target_applications(self):
        out = run_example("target_applications.py")
        assert "Molecular dynamics" in out
        assert "Raytracing" in out
        assert "scratchpad tiles" in out
        assert "verified=False" not in out
