"""Tests for the data cache unit: LRU, dirty state, way partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.config import ChipConfig
from repro.errors import CacheConfigError
from repro.memory.cache import CacheUnit

CFG = ChipConfig.paper()
LINE = CFG.dcache_line_bytes


def make_cache(**kwargs) -> CacheUnit:
    return CacheUnit(0, CFG, **kwargs)


def line_in_set(cache: CacheUnit, set_index: int, k: int) -> int:
    """The k-th distinct line address mapping to *set_index*."""
    return (set_index + k * cache.n_sets) * LINE


class TestGeometry:
    def test_paper_geometry(self):
        cache = make_cache()
        assert cache.n_sets == 32
        assert cache.total_ways == 8
        assert cache.capacity_bytes == 16 * 1024

    def test_resident_lines_starts_empty(self):
        assert make_cache().resident_lines == 0


class TestHitsAndMisses:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert not cache.access(0, is_store=False).hit
        assert cache.access(0, is_store=False).hit
        assert cache.hits == 1 and cache.misses == 1

    def test_different_lines_tracked_separately(self):
        cache = make_cache()
        cache.access(0, is_store=False)
        assert not cache.access(LINE, is_store=False).hit

    def test_store_marks_dirty(self):
        cache = make_cache()
        cache.access(0, is_store=True)
        assert cache.line(0).dirty

    def test_load_does_not_mark_dirty(self):
        cache = make_cache()
        cache.access(0, is_store=False)
        assert not cache.line(0).dirty

    def test_store_hit_dirties_clean_line(self):
        cache = make_cache()
        cache.access(0, is_store=False)
        cache.access(0, is_store=True)
        assert cache.line(0).dirty

    def test_probe_does_not_change_state(self):
        cache = make_cache()
        assert not cache.probe(0)
        assert cache.accesses == 0

    def test_no_allocate_records_miss_without_fill(self):
        cache = make_cache()
        result = cache.access(0, is_store=False, allocate=False)
        assert not result.hit
        assert cache.resident_lines == 0


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = make_cache()
        lines = [line_in_set(cache, 0, k) for k in range(9)]
        for addr in lines[:8]:
            cache.access(addr, is_store=False)
        # Touch line 0 so line 1 becomes LRU.
        cache.access(lines[0], is_store=False)
        result = cache.access(lines[8], is_store=False)
        assert result.victim_line == lines[1]

    def test_victim_reports_dirty(self):
        cache = make_cache()
        lines = [line_in_set(cache, 3, k) for k in range(9)]
        cache.access(lines[0], is_store=True)
        for addr in lines[1:8]:
            cache.access(addr, is_store=False)
        result = cache.access(lines[8], is_store=False)
        assert result.victim_line == lines[0]
        assert result.victim_dirty
        assert cache.writebacks == 1

    def test_clean_victim_needs_no_writeback(self):
        cache = make_cache()
        lines = [line_in_set(cache, 0, k) for k in range(9)]
        for addr in lines[:8]:
            cache.access(addr, is_store=False)
        result = cache.access(lines[8], is_store=False)
        assert result.victim_dirty is False
        assert cache.writebacks == 0

    def test_capacity_never_exceeded(self):
        cache = make_cache()
        for k in range(100):
            cache.access(line_in_set(cache, 5, k), is_store=False)
        assert cache.resident_lines <= cache.total_ways

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_property_bounded_occupancy(self, accesses):
        cache = make_cache()
        for k in accesses:
            cache.access(k * LINE, is_store=bool(k % 2))
        assert cache.resident_lines <= cache.n_sets * cache.total_ways
        # Everything recently touched within associativity must still hit.
        assert cache.accesses == len(accesses)


class TestInvalidateAndFlush:
    def test_invalidate_drops_line(self):
        cache = make_cache()
        cache.access(0, is_store=True)
        state = cache.invalidate(0)
        assert state.dirty
        assert not cache.probe(0)

    def test_invalidate_missing_returns_none(self):
        assert make_cache().invalidate(0) is None

    def test_flush_returns_dirty_lines(self):
        cache = make_cache()
        cache.access(0, is_store=True)
        cache.access(LINE, is_store=False)
        dirty = cache.flush()
        assert [addr for addr, _ in dirty] == [0]
        assert cache.resident_lines == 0


class TestWayPartitioning:
    def test_partition_reduces_ways(self):
        cache = make_cache()
        cache.set_scratchpad_ways(2)
        assert cache.effective_ways == 6
        assert cache.scratchpad_bytes == 4 * 1024
        assert cache.capacity_bytes == 12 * 1024

    def test_partition_by_bytes_at_2kb_grain(self):
        cache = make_cache()
        cache.set_scratchpad_bytes(4 * 1024)
        assert cache.scratchpad_ways == 2

    def test_rejects_non_grain_sizes(self):
        with pytest.raises(CacheConfigError):
            make_cache().set_scratchpad_bytes(3 * 1024)

    def test_rejects_partitioning_everything(self):
        with pytest.raises(CacheConfigError):
            make_cache().set_scratchpad_ways(8)

    def test_partition_flushes(self):
        cache = make_cache()
        cache.access(0, is_store=False)
        cache.set_scratchpad_ways(1)
        assert cache.resident_lines == 0

    def test_reduced_associativity_evicts_sooner(self):
        cache = make_cache()
        cache.set_scratchpad_ways(6)  # 2 ways left
        lines = [line_in_set(cache, 0, k) for k in range(3)]
        cache.access(lines[0], is_store=False)
        cache.access(lines[1], is_store=False)
        result = cache.access(lines[2], is_store=False)
        assert result.victim_line == lines[0]

    def test_scratchpad_readback(self):
        cache = make_cache()
        cache.set_scratchpad_ways(1)
        cache.scratchpad_write(64, b"hello   ")
        assert cache.scratchpad_read(64, 8) == b"hello   "

    def test_scratchpad_bounds(self):
        cache = make_cache()
        cache.set_scratchpad_ways(1)
        with pytest.raises(CacheConfigError):
            cache.scratchpad_read(cache.scratchpad_bytes, 1)
        with pytest.raises(CacheConfigError):
            cache.scratchpad_write(-1, b"x")


class TestBufferedData:
    def test_lines_carry_buffers_in_strict_mode(self):
        cache = make_cache(buffer_data=True)
        cache.access(0, is_store=False)
        assert cache.line(0).data is not None
        assert len(cache.line(0).data) == LINE

    def test_victim_data_travels_out(self):
        cache = make_cache(buffer_data=True)
        lines = [line_in_set(cache, 0, k) for k in range(9)]
        cache.access(lines[0], is_store=True)
        cache.line(lines[0]).data[:5] = b"dirty"
        for addr in lines[1:9]:
            cache.access(addr, is_store=False)
        # lines[0] was the LRU victim of the 9th access.
        assert cache.evictions == 1


class TestCounters:
    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0, is_store=False)
        cache.access(0, is_store=False)
        cache.access(0, is_store=True)
        assert cache.hit_rate() == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert make_cache().hit_rate() == 0.0

    def test_reset_counters_keeps_tags(self):
        cache = make_cache()
        cache.access(0, is_store=False)
        cache.reset_counters()
        assert cache.misses == 0
        assert cache.probe(0)
