"""Tests for the ISA layer: registers, encoding, assembler, builder,
and the timed interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.errors import AssemblerError, EncodingError, ExecutionError, IsaError
from repro.isa import (
    Builder,
    Interpreter,
    Program,
    assemble,
    decode_instruction,
    encode_instruction,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    N_INSTRUCTION_TYPES,
    OPCODES,
    Format,
    opcode,
)
from repro.isa.registers import REG_ZERO, RegisterFile


class TestOpcodeTable:
    def test_about_60_instruction_types(self):
        """The paper: 'about 60 instruction types'."""
        assert 55 <= N_INSTRUCTION_TYPES <= 75

    def test_all_names_unique_codes(self):
        codes = [op.code for op in OPCODES.values()]
        assert len(codes) == len(set(codes))

    def test_multithreading_additions_present(self):
        """Atomics and synchronization instructions (Section 2)."""
        for name in ("amoadd", "amoswap", "amoand", "amoor", "sync",
                     "mtspr", "mfspr"):
            assert name in OPCODES

    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            opcode("bogus")

    def test_latency_rows_resolve(self):
        cfg = ChipConfig.paper()
        for op in OPCODES.values():
            if op.latency_row != "memory":
                assert hasattr(cfg.latency, op.latency_row)


class TestRegisterFile:
    def test_r0_reads_zero(self):
        regs = RegisterFile()
        regs.write(REG_ZERO, 42)
        assert regs.read(REG_ZERO) == 0

    def test_values_wrap_32_bits(self):
        regs = RegisterFile()
        regs.write(5, 2**32 + 3)
        assert regs.read(5) == 3

    def test_signed_read(self):
        regs = RegisterFile()
        regs.write(5, 0xFFFFFFFF)
        assert regs.read_signed(5) == -1

    def test_double_pairing(self):
        regs = RegisterFile()
        regs.write_double(10, 3.25)
        assert regs.read_double(10) == 3.25
        # The pair occupies two physical words.
        assert regs.read(10) != 0 or regs.read(11) != 0

    def test_double_must_be_even(self):
        regs = RegisterFile()
        with pytest.raises(ExecutionError):
            regs.write_double(11, 1.0)

    def test_out_of_range(self):
        with pytest.raises(ExecutionError):
            RegisterFile().read(64)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_roundtrip_property(self, value):
        regs = RegisterFile()
        regs.write_double(20, value)
        assert regs.read_double(20) == value


class TestEncoding:
    def test_roundtrip_specific(self):
        inst = Instruction(opcode("addi"), rd=3, ra=7, imm=-100)
        assert decode_instruction(encode_instruction(inst)) == inst

    def test_negative_immediates(self):
        inst = Instruction(opcode("beq"), ra=1, rb=2, imm=-4)
        decoded = decode_instruction(encode_instruction(inst))
        assert decoded.imm == -4

    def test_immediate_overflow(self):
        with pytest.raises(IsaError):
            Instruction(opcode("addi"), rd=1, ra=1, imm=5000)

    def test_unknown_opcode_word(self):
        with pytest.raises(EncodingError):
            decode_instruction(127 << 25)

    @given(st.sampled_from(sorted(OPCODES)), st.integers(0, 63),
           st.integers(0, 63), st.integers(0, 63),
           st.integers(-(1 << 12), (1 << 12) - 1))
    def test_roundtrip_property(self, name, rd, ra, rb, imm):
        op = OPCODES[name]
        kwargs = {}
        if op.fmt in (Format.R, Format.S):
            kwargs = dict(rd=rd, ra=ra, rb=rb)
        elif op.fmt in (Format.I, Format.M):
            kwargs = dict(rd=rd, ra=ra, imm=imm)
        elif op.fmt is Format.B:
            kwargs = dict(ra=ra, rb=rb, imm=imm)
        else:
            kwargs = dict(imm=abs(imm))
        inst = Instruction(op, **kwargs)
        assert decode_instruction(encode_instruction(inst)) == inst


class TestAssembler:
    def test_labels_and_branches(self):
        program = assemble("""
        top:
            addi r3, r3, -1
            bne  r3, r0, top
            halt
        """)
        assert program.labels == {"top": 0}
        assert program[1].imm == -2

    def test_forward_references(self):
        program = assemble("""
            beq r0, r0, out
            nop
        out:
            halt
        """)
        assert program[0].imm == 1

    def test_memory_displacement(self):
        program = assemble("lw r4, -8(r5)\nhalt")
        assert program[0].ra == 5
        assert program[0].imm == -8

    def test_hex_immediates(self):
        program = assemble("addi r3, r0, 0x7f\nhalt")
        assert program[0].imm == 0x7F

    def test_comments_ignored(self):
        program = assemble("# top\nnop  # mid\nhalt")
        assert len(program) == 2

    def test_two_operand_fp(self):
        program = assemble("fsqrt r10, r12\nhalt")
        assert program[0].ra == 12

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nnop\na:\nhalt")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2, r3")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, r99")

    def test_listing_roundtrips_through_assembler(self):
        source = "top:\n  addi r3, r0, 5\n  bne r3, r0, top\n  halt"
        program = assemble(source)
        # Every rendered instruction re-assembles to itself.
        for inst in program.instructions:
            if inst.opcode.fmt is Format.B:
                continue  # render shows resolved numeric offsets
            again = assemble(inst.render() + "\nhalt")
            assert again[0] == inst


class TestBuilder:
    def test_matches_assembler(self):
        b = Builder()
        b.addi(3, 0, 5)
        b.label("spin")
        b.addi(3, 3, -1)
        b.bne(3, 0, "spin")
        b.halt()
        built = b.build()
        text = assemble("""
            addi r3, r0, 5
        spin:
            addi r3, r3, -1
            bne  r3, r0, spin
            halt
        """)
        assert [i.render() for i in built.instructions] == \
            [i.render() for i in text.instructions]

    def test_undefined_label(self):
        b = Builder()
        b.beq(0, 0, "nowhere")
        with pytest.raises(AssemblerError):
            b.build()

    def test_duplicate_label(self):
        b = Builder()
        b.label("x")
        with pytest.raises(AssemblerError):
            b.label("x")


class TestProgram:
    def test_addresses(self):
        program = assemble("nop\nnop\nhalt", base=0x100)
        assert program.address_of(2) == 0x108

    def test_encode_from_words_roundtrip(self):
        program = assemble("addi r3, r0, 7\nsw r3, 0(r4)\nhalt")
        again = Program.from_words(program.encode())
        assert [i.render() for i in again.instructions] == \
            [i.render() for i in program.instructions]

    def test_undefined_label_lookup(self):
        with pytest.raises(IsaError):
            assemble("halt").index_of_label("missing")


class TestInterpreter:
    def run_program(self, source, init_regs=None, init_doubles=None,
                    chip=None, tid=0):
        chip = chip or Chip()
        interp = Interpreter(chip, model_fetch=False)
        state = interp.add_thread(tid, assemble(source), init_regs,
                                  init_doubles)
        cycles = interp.run()
        return chip, state, cycles

    def test_arithmetic(self):
        _, state, _ = self.run_program("""
            addi r3, r0, 6
            addi r4, r0, 7
            mul  r5, r3, r4
            halt
        """)
        assert state.regs.read(5) == 42

    def test_division_semantics(self):
        _, state, _ = self.run_program("""
            addi r3, r0, -7
            addi r4, r0, 2
            div  r5, r3, r4
            rem  r6, r3, r4
            halt
        """)
        assert state.regs.read_signed(5) == -3  # truncating division
        assert state.regs.read_signed(6) == -1

    def test_divide_by_zero_traps(self):
        with pytest.raises(ExecutionError):
            self.run_program("div r3, r0, r0\nhalt")

    def test_loop_executes(self):
        _, state, _ = self.run_program("""
            addi r3, r0, 10
            addi r4, r0, 0
        loop:
            add  r4, r4, r3
            addi r3, r3, -1
            bne  r3, r0, loop
            halt
        """)
        assert state.regs.read(4) == 55

    def test_memory_roundtrip(self):
        chip, state, _ = self.run_program("""
            addi r3, r0, 0x50
            addi r4, r0, 77
            sw   r4, 4(r3)
            lw   r5, 4(r3)
            halt
        """)
        assert state.regs.read(5) == 77
        assert chip.memory.backing.load_u32(0x54) == 77

    def test_byte_and_half_accesses(self):
        chip, state, _ = self.run_program("""
            addi r3, r0, 0x60
            addi r4, r0, 0x7b4
            sh   r4, 0(r3)
            lbu  r5, 0(r3)
            lhu  r6, 0(r3)
            halt
        """)
        assert state.regs.read(5) == 0xB4
        assert state.regs.read(6) == 0x7B4

    def test_double_memory(self):
        chip, state, _ = self.run_program(
            "sd r10, 0(r3)\nld r12, 0(r3)\nhalt",
            init_regs={3: 0x80}, init_doubles={10: 2.5},
        )
        assert state.regs.read_double(12) == 2.5

    def test_fp_pipeline(self):
        _, state, _ = self.run_program(
            "fmadd r10, r12, r14\nhalt",
            init_doubles={10: 1.0, 12: 2.0, 14: 3.0},
        )
        assert state.regs.read_double(10) == 7.0

    def test_fp_divide_and_sqrt(self):
        _, state, _ = self.run_program(
            "fdiv r16, r10, r12\nfsqrt r18, r14\nhalt",
            init_doubles={10: 10.0, 12: 4.0, 14: 9.0},
        )
        assert state.regs.read_double(16) == 2.5
        assert state.regs.read_double(18) == 3.0

    def test_conversions(self):
        _, state, _ = self.run_program("""
            addi  r3, r0, -5
            cvtif r10, r3
            cvtfi r4, r10
            halt
        """)
        assert state.regs.read_double(10) == -5.0
        assert state.regs.read_signed(4) == -5

    def test_atomics(self):
        chip, state, _ = self.run_program("""
            addi    r3, r0, 0x90
            addi    r4, r0, 5
            amoadd  r5, r3, r4
            amoadd  r6, r3, r4
            halt
        """)
        assert state.regs.read(5) == 0
        assert state.regs.read(6) == 5
        assert chip.memory.backing.load_u32(0x90) == 10

    def test_jal_and_jr(self):
        _, state, _ = self.run_program("""
            jal  sub
            addi r4, r0, 1
            halt
        sub:
            addi r3, r0, 9
            jr   r2
        """)
        assert state.regs.read(3) == 9
        assert state.regs.read(4) == 1

    def test_tid(self):
        _, state, _ = self.run_program("tid r3\nhalt", tid=37)
        assert state.regs.read(3) == 37

    def test_dependence_stalls_counted(self):
        _, state, _ = self.run_program("""
            addi r3, r0, 1
            mul  r4, r3, r3
            add  r5, r4, r4
            halt
        """)
        # The add waits 5 extra cycles for the multiply's latency.
        assert state.tu.counters.stall_cycles >= 5

    def test_two_threads_contend_for_fpu(self):
        chip = Chip()
        interp = Interpreter(chip, model_fetch=False)
        source = "fadd r10, r12, r14\n" * 20 + "halt"
        program = assemble(source)
        interp.add_thread(0, program)
        interp.add_thread(1, program)  # same quad: shared adder pipe
        cycles = interp.run()
        assert cycles >= 38  # ~40 issues through a 1-per-cycle pipe

    def test_pc_out_of_range(self):
        with pytest.raises(ExecutionError):
            self.run_program("nop")  # falls off the end (no halt)

    def test_duplicate_thread_rejected(self):
        chip = Chip()
        interp = Interpreter(chip)
        program = assemble("halt")
        interp.add_thread(0, program)
        with pytest.raises(ExecutionError):
            interp.add_thread(0, program)

    def test_icache_fetch_modeled(self):
        chip = Chip()
        interp = Interpreter(chip, model_fetch=True)
        # A loop body spanning two PIB windows: the first iteration
        # misses in the I-cache, later iterations hit.
        program = assemble(
            "addi r3, r0, 3\nloop:\n" + "nop\n" * 20
            + "addi r3, r3, -1\nbne r3, r0, loop\nhalt"
        )
        interp.add_thread(0, program)
        interp.run()
        icache = chip.icache_of(0)
        assert icache.misses >= 1
        assert icache.hits >= 1
