"""Property-based invariants of the composed memory subsystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ChipConfig
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL, InterestGroup, Level
from repro.memory.subsystem import AccessKind, MemorySubsystem

CFG = ChipConfig.paper()

aligned_addrs = st.integers(0, (CFG.memory_bytes - 8) // 8).map(lambda i: i * 8)


@settings(max_examples=60, deadline=None)
@given(aligned_addrs, st.integers(0, 31), st.booleans())
def test_latency_never_below_table2_minimum(physical, quad, is_store):
    """No access completes faster than its Table 2 row allows."""
    memory = MemorySubsystem(CFG)
    out = memory.access(0, quad, make_effective(physical, IG_ALL), 8,
                        is_store)
    lat = CFG.latency
    floor = {
        AccessKind.LOCAL_HIT: lat.mem_local_hit[1],
        AccessKind.REMOTE_HIT: lat.mem_remote_hit[1],
        AccessKind.LOCAL_MISS: 0 if is_store else lat.mem_local_miss[1],
        AccessKind.REMOTE_MISS: 0 if is_store else lat.mem_remote_miss[1],
    }[out.kind]
    assert out.complete - out.issue_end >= floor
    assert out.issue_end >= 1


@settings(max_examples=40, deadline=None)
@given(aligned_addrs)
def test_load_then_load_hits(physical):
    """Temporal locality always pays off under a unique-home group."""
    memory = MemorySubsystem(CFG)
    ea = make_effective(physical, IG_ALL)
    first = memory.access(0, 0, ea, 8, False)
    second = memory.access(first.complete + 1, 0, ea, 8, False)
    assert second.kind in (AccessKind.LOCAL_HIT, AccessKind.REMOTE_HIT)
    assert second.complete - second.issue_end \
        < first.complete - first.issue_end


@settings(max_examples=40, deadline=None)
@given(st.lists(aligned_addrs, min_size=1, max_size=60), st.integers(0, 31))
def test_traffic_conservation(addresses, quad):
    """Bank traffic equals fills x line size plus writebacks x line size,
    and every byte is accounted in exactly one bank."""
    memory = MemorySubsystem(CFG)
    time = 0
    for addr in addresses:
        out = memory.access(time, quad, make_effective(addr, IG_ALL), 8,
                            False)
        time = out.complete + 1
    misses = memory.kind_counts[AccessKind.LOCAL_MISS] \
        + memory.kind_counts[AccessKind.REMOTE_MISS]
    assert memory.memory_traffic_bytes == misses * CFG.dcache_line_bytes
    per_bank = sum(b.bytes_total for b in memory.banks)
    assert per_bank == memory.memory_traffic_bytes


@settings(max_examples=30, deadline=None)
@given(st.integers(0, CFG.memory_bytes // CFG.interleave_bytes - 1))
def test_interleave_unit_maps_to_one_bank(unit):
    """All bytes of one interleave unit live in the same bank, and the
    neighbouring unit lives in the next bank round-robin."""
    memory = MemorySubsystem(CFG)
    base = unit * CFG.interleave_bytes
    bank = memory.address_map.bank_of(base)
    assert memory.address_map.bank_of(base + CFG.interleave_bytes - 1) \
        == bank
    if base + CFG.interleave_bytes < CFG.memory_bytes:
        neighbour = memory.address_map.bank_of(base + CFG.interleave_bytes)
        assert neighbour == (bank + 1) % CFG.n_memory_banks


@settings(max_examples=30, deadline=None)
@given(aligned_addrs, st.integers(0, 31))
def test_write_validate_saves_exactly_one_fill(physical, quad):
    """A store miss costs one line of traffic less than a load miss
    (the fetch), everything else equal."""
    load_side = MemorySubsystem(CFG)
    store_side = MemorySubsystem(CFG)
    ea = make_effective(physical, IG_ALL)
    load_side.access(0, quad, ea, 8, False)
    store_side.access(0, quad, ea, 8, True)
    assert load_side.memory_traffic_bytes \
        - store_side.memory_traffic_bytes == CFG.dcache_line_bytes


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 255))
def test_every_decodable_group_places_in_range(byte):
    """Any byte that decodes must place any line in a valid cache."""
    from repro.errors import InterestGroupError
    memory = MemorySubsystem(CFG)
    try:
        InterestGroup.decode(byte)
    except InterestGroupError:
        return
    target = memory.target_cache(byte, 0x1234 * 64, 5)
    assert 0 <= target < CFG.n_dcaches
