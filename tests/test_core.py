"""Tests for the chip core: FPU sharing, SPR barrier, thread units,
quads, instruction caches, fault tolerance."""

import pytest

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.core.counters import ChipCounters, ThreadCounters
from repro.core.faults import FaultController
from repro.core.fpu import FPU
from repro.core.icache import InstructionCache, PrefetchBuffer
from repro.core.spr import BarrierSPRFile
from repro.core.thread_unit import ThreadUnit
from repro.errors import BarrierError, ConfigError, MemoryFault
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL

CFG = ChipConfig.paper()


class TestFPU:
    def test_add_latency_matches_table_2(self):
        fpu = FPU(0, CFG)
        issue_end, ready = fpu.add(0)
        assert issue_end == 1
        assert ready == 6  # 1 execution + 5 latency

    def test_adder_pipelines_one_per_cycle(self):
        fpu = FPU(0, CFG)
        ends = [fpu.add(0)[0] for _ in range(3)]
        assert ends == [1, 2, 3]

    def test_adder_and_multiplier_independent(self):
        """Paper: an add and a multiply can dispatch every cycle."""
        fpu = FPU(0, CFG)
        assert fpu.add(0)[0] == 1
        assert fpu.multiply(0)[0] == 1

    def test_fma_occupies_both_pipes(self):
        fpu = FPU(0, CFG)
        fpu.fma(0)
        assert fpu.add(0)[0] == 2
        assert fpu.multiply(0)[0] == 2

    def test_fma_sustains_one_per_cycle(self):
        """Paper: the FPU completes an FMA every cycle (1 GFlops/FPU)."""
        fpu = FPU(0, CFG)
        readies = [fpu.fma(0)[1] for _ in range(10)]
        assert [r - readies[0] for r in readies] == list(range(10))

    def test_fma_latency(self):
        fpu = FPU(0, CFG)
        issue_end, ready = fpu.fma(0)
        assert ready - issue_end == 9

    def test_divide_non_pipelined(self):
        fpu = FPU(0, CFG)
        assert fpu.divide(0) == (30, 30)
        assert fpu.divide(0) == (60, 60)  # second waits for the unit

    def test_sqrt_56_cycles(self):
        fpu = FPU(0, CFG)
        assert fpu.sqrt(0) == (56, 56)

    def test_divide_does_not_block_adder(self):
        fpu = FPU(0, CFG)
        fpu.divide(0)
        assert fpu.add(0)[0] == 1

    def test_reset(self):
        fpu = FPU(0, CFG)
        fpu.add(0)
        fpu.reset()
        assert fpu.operations == 0
        assert fpu.add(0)[0] == 1


class TestBarrierSPR:
    def test_protocol_cycle(self):
        """The exact current/next-bit protocol of Section 2.3."""
        spr = BarrierSPRFile(CFG)
        participants = [0, 1, 2]
        for tid in participants:
            spr.participate(tid, 0)
        assert not spr.current_clear(0)
        spr.arrive(0, 0)
        spr.arrive(1, 0)
        assert not spr.current_clear(0)  # thread 2 still computing
        spr.arrive(2, 0)
        assert spr.current_clear(0)
        # Arrivals pre-set the next cycle: after the phase flip everyone
        # is already participating again.
        spr.advance_phase(0)
        assert not spr.current_clear(0)

    def test_roles_interchange_every_use(self):
        spr = BarrierSPRFile(CFG)
        spr.participate(0, 0)
        for _ in range(4):
            spr.arrive(0, 0)
            assert spr.current_clear(0)
            spr.advance_phase(0)

    def test_four_independent_barriers(self):
        spr = BarrierSPRFile(CFG)
        for b in range(4):
            spr.participate(0, b)
        spr.arrive(0, 1)
        assert spr.current_clear(1)
        assert not spr.current_clear(0)
        assert not spr.current_clear(2)

    def test_non_participants_do_not_block(self):
        spr = BarrierSPRFile(CFG)
        spr.participate(0, 0)
        # Threads 1..127 leave both bits 0 and never matter.
        spr.arrive(0, 0)
        assert spr.current_clear(0)

    def test_wired_or_reads(self):
        spr = BarrierSPRFile(CFG)
        spr.write(3, 0b0101)
        spr.write(90, 0b0010)
        assert spr.read_or() == 0b0111
        assert spr.read_own(3) == 0b0101

    def test_withdraw(self):
        spr = BarrierSPRFile(CFG)
        spr.participate(0, 0)
        spr.withdraw(0, 0)
        assert spr.current_clear(0)

    def test_bad_barrier_id(self):
        spr = BarrierSPRFile(CFG)
        with pytest.raises(BarrierError):
            spr.participate(0, 4)

    def test_bad_tid(self):
        spr = BarrierSPRFile(CFG)
        with pytest.raises(BarrierError):
            spr.write(128, 0)

    def test_value_width_checked(self):
        spr = BarrierSPRFile(CFG)
        with pytest.raises(BarrierError):
            spr.write(0, 256)


class TestThreadUnit:
    def test_quad_and_lane(self):
        tu = ThreadUnit(13, CFG)
        assert tu.quad_id == 3
        assert tu.lane == 1

    def test_stall_accounting(self):
        tu = ThreadUnit(0, CFG)
        tu.issue_at(10)
        assert tu.counters.stall_cycles == 10
        tu.retire(1)
        assert tu.issue_time == 11
        assert tu.counters.run_cycles == 1

    def test_no_stall_when_ready(self):
        tu = ThreadUnit(0, CFG)
        tu.issue_at(0)
        assert tu.counters.stall_cycles == 0

    def test_execute_local_returns_ready_time(self):
        tu = ThreadUnit(0, CFG)
        ready = tu.execute_local(5, (1, 5))  # int multiply shape
        assert ready == 11
        assert tu.issue_time == 6

    def test_int_divide_occupies_thread(self):
        tu = ThreadUnit(0, CFG)
        tu.execute_local(0, CFG.latency.int_divide)
        assert tu.issue_time == 33
        assert tu.counters.run_cycles == 33

    def test_reset(self):
        tu = ThreadUnit(0, CFG)
        tu.execute_local(0, (1, 0))
        tu.reset()
        assert tu.issue_time == 0
        assert tu.counters.instructions == 0


class TestCounters:
    def test_merge(self):
        a = ThreadCounters(instructions=5, run_cycles=10, stall_cycles=3)
        b = ThreadCounters(instructions=2, run_cycles=4, stall_cycles=1)
        a.merge(b)
        assert a.instructions == 7
        assert a.run_cycles == 14
        assert a.stall_cycles == 4

    def test_total_and_idle(self):
        c = ThreadCounters(run_cycles=5, stall_cycles=3,
                           start_time=10, finish_time=30)
        assert c.total_cycles == 20
        assert c.idle_cycles == 12

    def test_chip_aggregate(self):
        chip_counters = ChipCounters()
        chip_counters.thread(0).run_cycles = 5
        chip_counters.thread(1).run_cycles = 7
        assert chip_counters.total_run_cycles == 12
        assert chip_counters.aggregate().run_cycles == 12


class TestChipAssembly:
    def test_paper_chip_shape(self):
        chip = Chip()
        assert len(chip.threads) == 128
        assert len(chip.quads) == 32
        assert len(chip.fpus) == 32
        assert len(chip.icaches) == 16
        assert len(chip.memory.caches) == 32
        assert len(chip.memory.banks) == 16

    def test_quad_thread_binding(self):
        chip = Chip()
        quad = chip.quad_of(13)
        assert quad.quad_id == 3
        assert 13 in quad.thread_ids
        assert chip.fpu_of(13) is quad.fpu

    def test_icache_shared_by_quad_pair(self):
        chip = Chip()
        assert chip.icache_of(0) is chip.icache_of(7)      # quads 0,1
        assert chip.icache_of(0) is not chip.icache_of(8)  # quad 2

    def test_small_chip(self):
        chip = Chip(ChipConfig.small())
        assert len(chip.quads) == 4

    def test_reset_run_clears_state(self):
        chip = Chip()
        chip.threads[0].execute_local(0, (1, 0))
        chip.fpus[0].add(0)
        chip.reset_run()
        assert chip.threads[0].issue_time == 0
        assert chip.fpus[0].operations == 0

    def test_cold_start_empties_caches(self):
        chip = Chip()
        ea = make_effective(0, IG_ALL)
        chip.memory.access(0, 0, ea, 8, False)
        chip.cold_start()
        assert all(c.resident_lines == 0 for c in chip.memory.caches)

    def test_quad_mismatch_rejected(self):
        from repro.core.quad import Quad
        chip = Chip()
        with pytest.raises(ConfigError):
            Quad(0, CFG, chip.threads[4:8], chip.fpus[0])


class TestPrefetchBuffer:
    def test_window_tracking(self):
        pib = PrefetchBuffer(CFG)
        assert not pib.holds(0)
        pib.refill(0x104)
        assert pib.holds(0x100)
        assert pib.holds(0x13C)
        assert not pib.holds(0x140)

    def test_window_is_16_instructions(self):
        pib = PrefetchBuffer(CFG)
        assert pib.window_bytes == 64

    def test_clear(self):
        pib = PrefetchBuffer(CFG)
        pib.refill(0)
        pib.clear()
        assert not pib.holds(0)


class TestInstructionCache:
    def make(self):
        from repro.memory.address import AddressMap
        from repro.memory.bank import MemoryBank
        banks = [MemoryBank(i, CFG) for i in range(CFG.n_memory_banks)]
        return InstructionCache(0, CFG), banks, AddressMap(CFG)

    def test_geometry(self):
        icache, _, _ = self.make()
        assert icache.n_sets == 64  # 32 KB / (64 B x 8 ways)

    def test_miss_then_hit(self):
        icache, banks, amap = self.make()
        ready, hit = icache.fetch(0, 0x400, banks, amap)
        assert not hit
        assert ready >= 12
        ready, hit = icache.fetch(ready, 0x404, banks, amap)
        assert hit
        assert icache.hit_rate() == 0.5

    def test_miss_consumes_bank_bandwidth(self):
        icache, banks, amap = self.make()
        icache.fetch(0, 0x400, banks, amap)
        assert sum(b.bytes_read for b in banks) == 64

    def test_invalidate(self):
        icache, banks, amap = self.make()
        icache.fetch(0, 0, banks, amap)
        icache.invalidate()
        _, hit = icache.fetch(100, 0, banks, amap)
        assert not hit


class TestFaultTolerance:
    def test_bank_failure_shrinks_memory(self):
        chip = Chip()
        faults = FaultController(chip)
        new_max = faults.fail_bank(3)
        assert new_max == 15 * 512 * 1024
        assert chip.memory.address_map.max_memory == new_max

    def test_chip_still_works_after_bank_failure(self):
        chip = Chip()
        FaultController(chip).fail_bank(0)
        ea = make_effective(0x1000, IG_ALL)
        out, _ = chip.memory.load_f64(0, 0, ea)
        assert out.complete > 0

    def test_thread_failure_excluded_from_enabled(self):
        chip = Chip()
        faults = FaultController(chip)
        faults.fail_thread(5)
        assert 5 not in chip.enabled_threads
        assert len(chip.enabled_threads) == 127

    def test_fpu_failure_disables_quad(self):
        chip = Chip()
        faults = FaultController(chip)
        faults.fail_fpu(2)
        assert chip.quads[2].disabled
        for tid in chip.quads[2].thread_ids:
            assert tid not in chip.enabled_threads
        assert len(chip.enabled_threads) == 124

    def test_disabled_cache_remapped_deterministically(self):
        chip = Chip()
        faults = FaultController(chip)
        faults.fail_fpu(2)
        # Addresses that would map to cache 2 must go elsewhere, stably.
        for phys in range(0, 64 * 256, 64):
            target = chip.memory.target_cache(IG_ALL, phys, 0)
            assert target != 2
            assert target == chip.memory.target_cache(IG_ALL, phys, 0)

    def test_accesses_still_resolve_after_quad_failure(self):
        chip = Chip()
        FaultController(chip).fail_fpu(0)
        ea = make_effective(0x2000, IG_ALL)
        out, _ = chip.memory.load_f64(0, 1, ea)
        assert out.cache_id != 0

    def test_summary(self):
        chip = Chip()
        faults = FaultController(chip)
        faults.fail_bank(1)
        faults.fail_thread(7)
        faults.fail_fpu(9)
        report = faults.summary()
        assert report["failed_banks"] == [1]
        assert report["healthy_threads"] == 123

    def test_all_caches_disabled_rejected(self):
        chip = Chip(ChipConfig.small(n_threads=8))  # two quads
        faults = FaultController(chip)
        faults.fail_fpu(0)
        with pytest.raises(MemoryFault):
            faults.fail_fpu(1)
