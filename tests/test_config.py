"""Tests for the chip configuration (geometry, peak rates, validation)."""

import dataclasses

import pytest

from repro.config import ChipConfig, LatencyTable
from repro.errors import ConfigError


class TestPaperDesignPoint:
    def test_thread_hierarchy(self):
        cfg = ChipConfig.paper()
        assert cfg.n_threads == 128
        assert cfg.threads_per_quad == 4
        assert cfg.n_quads == 32
        assert cfg.n_fpus == 32
        assert cfg.n_dcaches == 32
        assert cfg.n_icaches == 16

    def test_memory_geometry(self):
        cfg = ChipConfig.paper()
        assert cfg.n_memory_banks == 16
        assert cfg.bank_bytes == 512 * 1024
        assert cfg.memory_bytes == 8 * 1024 * 1024
        assert cfg.dcache_bytes == 16 * 1024
        assert cfg.dcache_total_bytes == 512 * 1024
        assert cfg.dcache_sets == 32  # 16 KB / (64 B * 8 ways)

    def test_peak_memory_bandwidth_is_papers_42_gb_s(self):
        cfg = ChipConfig.paper()
        assert cfg.peak_memory_bandwidth == pytest.approx(42.7e9, rel=0.01)

    def test_peak_cache_bandwidth_is_papers_128_gb_s(self):
        cfg = ChipConfig.paper()
        assert cfg.peak_cache_bandwidth == pytest.approx(128e9)

    def test_peak_flops_is_papers_32_gflops(self):
        cfg = ChipConfig.paper()
        assert cfg.peak_flops == pytest.approx(32e9)

    def test_four_hardware_barriers(self):
        assert ChipConfig.paper().n_barriers == 4

    def test_126_usable_threads(self):
        assert ChipConfig.paper().usable_threads == 126


class TestLatencyTable:
    def test_values_match_table_2(self):
        lat = LatencyTable()
        assert lat.branch == (2, 0)
        assert lat.int_multiply == (1, 5)
        assert lat.int_divide == (33, 0)
        assert lat.fp_add == (1, 5)
        assert lat.fp_divide == (30, 0)
        assert lat.fp_sqrt == (56, 0)
        assert lat.fp_multiply_add == (1, 9)
        assert lat.mem_local_hit == (1, 6)
        assert lat.mem_local_miss == (1, 24)
        assert lat.mem_remote_hit == (1, 17)
        assert lat.mem_remote_miss == (1, 36)
        assert lat.other == (1, 0)

    def test_issue_to_use(self):
        lat = LatencyTable()
        assert lat.issue_to_use("fp_multiply_add") == 10
        assert lat.issue_to_use("mem_local_hit") == 7
        assert lat.issue_to_use("int_divide") == 33


class TestValidation:
    def test_threads_must_divide_into_quads(self):
        with pytest.raises(ConfigError):
            ChipConfig(n_threads=130)

    def test_quads_must_divide_into_icaches(self):
        with pytest.raises(ConfigError):
            ChipConfig(n_threads=12, quads_per_icache=2)

    def test_line_size_power_of_two(self):
        with pytest.raises(ConfigError):
            ChipConfig(dcache_line_bytes=48)

    def test_banks_power_of_two(self):
        with pytest.raises(ConfigError):
            ChipConfig(n_memory_banks=12)

    def test_reserved_threads_bounded(self):
        with pytest.raises(ConfigError):
            ChipConfig(reserved_threads=128)

    def test_burst_is_two_blocks(self):
        with pytest.raises(ConfigError):
            ChipConfig(burst_bytes=96)

    def test_memory_fits_24_bit_space(self):
        with pytest.raises(ConfigError):
            ChipConfig(n_memory_banks=64, bank_bytes=512 * 1024)


class TestDerivation:
    def test_with_threads_scales_quads(self):
        cfg = ChipConfig.paper().with_threads(64)
        assert cfg.n_quads == 16
        assert cfg.n_fpus == 16

    def test_with_sharing_changes_degree(self):
        cfg = ChipConfig.paper().with_sharing(8)
        assert cfg.n_quads == 16
        assert cfg.threads_per_quad == 8

    def test_with_store_miss_fetch(self):
        cfg = ChipConfig.paper().with_store_miss_fetch(True)
        assert cfg.store_miss_fetches_line

    def test_small_config_valid(self):
        cfg = ChipConfig.small()
        assert cfg.n_threads == 16
        assert cfg.n_quads == 4
        cfg.validate()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ChipConfig.paper().n_threads = 1
