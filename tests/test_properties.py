"""Property-based and invariant tests across the stack.

These check the simulator's global guarantees: determinism, time
monotonicity, conservation of accounting, cache behaviour against a
reference model, and allocator non-overlap.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.memory.cache import CacheUnit
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL
from repro.runtime.heap import BumpHeap
from repro.runtime.kernel import AllocationPolicy, Kernel
from repro.workloads.stream import StreamParams, run_stream

CFG = ChipConfig.paper()


# ---------------------------------------------------------------------------
# Determinism: the whole simulator is a pure function of its inputs.
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_stream_run_is_reproducible(self):
        params = StreamParams(kernel="triad", n_elements=2048, n_threads=16)
        first = run_stream(params)
        second = run_stream(params)
        assert first.cycles == second.cycles
        assert first.bandwidth == second.bandwidth
        assert first.per_thread_bandwidth == second.per_thread_bandwidth

    def test_fft_run_is_reproducible(self):
        from repro.workloads.fft import FFTParams, run_fft
        params = FFTParams(n_points=64, n_threads=4)
        assert run_fft(params).total_cycles == run_fft(params).total_cycles

    def test_mixed_chaos_is_reproducible(self):
        def run_once() -> int:
            chip = Chip()
            kernel = Kernel(chip, AllocationPolicy.BALANCED)
            barrier = kernel.hardware_barrier(0, 12)
            base = kernel.heap.alloc_f64_array(512)

            def body(ctx, seed):
                t = 0
                for i in range(60):
                    slot = (seed * 37 + i * 13) % 512
                    if (seed + i) % 3 == 0:
                        t, _ = yield from ctx.load_f64(
                            ctx.ea(base + 8 * slot), deps=(t,))
                    elif (seed + i) % 3 == 1:
                        yield from ctx.store_f64(
                            ctx.ea(base + 8 * slot), float(i), deps=(t,))
                    else:
                        t = yield from ctx.fp_fma(deps=(t,))
                    if i % 20 == 19:
                        yield from barrier.wait(ctx)
                yield from barrier.wait(ctx)

            for s in range(12):
                kernel.spawn(body, s)
            return kernel.run()

        assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Accounting conservation
# ---------------------------------------------------------------------------
class TestAccounting:
    def test_run_plus_stall_bounded_by_elapsed(self):
        chip = Chip()
        kernel = Kernel(chip)

        def body(ctx):
            t = 0
            for i in range(50):
                t, _ = yield from ctx.load_f64(ctx.ea(8 * i), deps=(t,))
            return None

        thread = kernel.spawn(body)
        kernel.run()
        c = thread.ctx.tu.counters
        assert c.run_cycles + c.stall_cycles == thread.ctx.tu.issue_time

    def test_flop_counter_matches_issued_ops(self):
        chip = Chip()
        kernel = Kernel(chip)

        def body(ctx):
            for _ in range(10):
                yield from ctx.fp_fma()   # 2 flops
            for _ in range(5):
                yield from ctx.fp_add()   # 1 flop

        thread = kernel.spawn(body)
        kernel.run()
        assert thread.ctx.tu.counters.flops == 25

    def test_memory_traffic_is_line_granular(self):
        chip = Chip()
        for i in range(100):
            chip.memory.access(i * 50, 0,
                               make_effective(i * 64, IG_ALL), 8, False)
        assert chip.memory.memory_traffic_bytes % 32 == 0


# ---------------------------------------------------------------------------
# Cache behaviour vs a reference model
# ---------------------------------------------------------------------------
class _ReferenceCache:
    """An obviously-correct LRU set-associative model."""

    def __init__(self, n_sets: int, ways: int, line: int) -> None:
        self.n_sets, self.ways, self.line = n_sets, ways, line
        self.sets = [[] for _ in range(n_sets)]

    def access(self, line_addr: int) -> bool:
        index = (line_addr // self.line) % self.n_sets
        entries = self.sets[index]
        if line_addr in entries:
            entries.remove(line_addr)
            entries.append(line_addr)
            return True
        entries.append(line_addr)
        if len(entries) > self.ways:
            entries.pop(0)
        return False


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_cache_matches_reference_model(line_numbers):
    cache = CacheUnit(0, CFG)
    reference = _ReferenceCache(cache.n_sets, cache.total_ways,
                                cache.line_bytes)
    for number in line_numbers:
        addr = number * CFG.dcache_line_bytes
        assert cache.access(addr, is_store=False).hit \
            == reference.access(addr)


# ---------------------------------------------------------------------------
# Heap allocations never overlap
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 3000),
              st.sampled_from([1, 8, 64, 256])),
    min_size=1, max_size=40,
))
def test_heap_allocations_disjoint(requests):
    heap = BumpHeap(0, 1 << 20)
    regions = []
    for size, align in requests:
        base = heap.alloc(size, align=align)
        assert base % align == 0
        for other_base, other_size in regions:
            assert base + size <= other_base or base >= other_base + other_size
        regions.append((base, size))


# ---------------------------------------------------------------------------
# Resource timeline properties
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 50)),
                min_size=1, max_size=60))
def test_timeline_never_overlaps(requests):
    from repro.engine.resources import TimelineResource
    resource = TimelineResource("r")
    intervals = []
    for time, busy in requests:
        grant = resource.reserve(time, busy)
        assert grant >= time
        for start, end in intervals:
            assert grant >= end or grant + busy <= start
        intervals.append((grant, grant + busy))
    total_busy = sum(b for _, b in requests)
    assert resource.busy_cycles == total_busy


# ---------------------------------------------------------------------------
# Interest-group placement properties
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.integers(0, (1 << 24) - 64), st.integers(0, 31))
def test_placement_is_stable_across_requesters(physical, quad):
    """Under non-OWN groups, the home cache never depends on who asks."""
    from repro.memory.subsystem import MemorySubsystem
    memory = MemorySubsystem(CFG)
    home_from_quad = memory.target_cache(IG_ALL, physical, quad)
    home_from_zero = memory.target_cache(IG_ALL, physical, 0)
    assert home_from_quad == home_from_zero


@settings(max_examples=30, deadline=None)
@given(st.integers(0, (1 << 24) - 64))
def test_same_line_same_home(physical):
    """Addresses within one line share a home cache."""
    from repro.memory.subsystem import MemorySubsystem
    memory = MemorySubsystem(CFG)
    line_start = physical - physical % 64
    homes = {memory.target_cache(IG_ALL, line_start + off, 0)
             for off in (0, 8, 56)}
    assert len(homes) == 1
