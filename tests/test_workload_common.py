"""Tests for shared workload plumbing and tracing integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chip import Chip
from repro.engine.tracing import Tracer
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL
from repro.workloads.common import (
    TimedSection,
    block_ranges,
    cyclic_group_indices,
)


class TestTimedSection:
    def test_elapsed_spans_all_threads(self):
        section = TimedSection.empty()
        section.record_start(0, 100)
        section.record_start(1, 120)
        section.record_finish(0, 500)
        section.record_finish(1, 450)
        assert section.elapsed == 400  # 500 - 100
        assert section.thread_elapsed(1) == 330

    def test_empty_section(self):
        assert TimedSection.empty().elapsed == 0


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 5000), st.integers(1, 64), st.sampled_from([1, 8]))
def test_block_ranges_partition_property(n, threads, align):
    ranges = block_ranges(n, min(threads, n), align=align)
    flat = [i for r in ranges for i in r]
    assert flat == list(range(n))


@settings(max_examples=60, deadline=None)
@given(st.integers(8, 5000), st.integers(1, 64))
def test_cyclic_partition_property(n, threads):
    threads = min(threads, n)
    indices = cyclic_group_indices(n, threads)
    flat = sorted(i for lst in indices for i in lst)
    assert flat == list(range(n))


class TestTracingIntegration:
    def test_subsystem_emits_access_events(self):
        tracer = Tracer()
        chip = Chip(tracer=tracer)
        ea = make_effective(0x1000, IG_ALL)
        chip.memory.access(0, 0, ea, 8, False)
        chip.memory.access(50, 0, ea, 8, False)
        kinds = [r.event for r in tracer.records]
        assert kinds[0].endswith("miss")
        assert kinds[1].endswith("hit")

    def test_trace_details_carry_address(self):
        tracer = Tracer()
        chip = Chip(tracer=tracer)
        chip.memory.access(0, 0, make_effective(0x1000, IG_ALL), 8, True)
        assert "0x1000" in tracer.records[0].detail
        assert "store=True" in tracer.records[0].detail

    def test_null_tracer_costs_nothing(self):
        chip = Chip()
        chip.memory.access(0, 0, make_effective(0, IG_ALL), 8, False)
        assert not chip.tracer.records
