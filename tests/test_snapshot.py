"""Tests for chip state snapshots."""

import json

from repro.analysis.snapshot import diff_snapshots, snapshot, to_json
from repro.core.chip import Chip
from repro.core.faults import FaultController
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL
from repro.runtime.kernel import Kernel


class TestSnapshot:
    def test_fresh_chip_is_mostly_empty(self):
        snap = snapshot(Chip())
        assert snap["threads"] == {}
        assert snap["caches"] == {}
        assert snap["banks"] == {}
        assert snap["config"]["n_threads"] == 128

    def test_activity_is_captured(self):
        chip = Chip()
        kernel = Kernel(chip)

        def body(ctx):
            t, _ = yield from ctx.load_f64(ctx.ea(0x1000))
            yield from ctx.fp_fma(deps=(t,))

        kernel.spawn(body)
        kernel.run()
        snap = snapshot(chip)
        assert snap["threads"]["0"]["loads"] == 1
        assert snap["threads"]["0"]["flops"] == 2
        assert snap["access_kinds"]
        assert len(snap["caches"]) == 1
        assert len(snap["banks"]) == 1

    def test_faults_visible(self):
        chip = Chip()
        faults = FaultController(chip)
        faults.fail_bank(2)
        snap = snapshot(chip)
        assert snap["banks"]["2"]["failed"]
        assert snap["max_memory"] == 15 * 512 * 1024

    def test_json_roundtrip(self):
        chip = Chip()
        chip.memory.access(0, 0, make_effective(0, IG_ALL), 8, False)
        text = to_json(chip)
        assert json.loads(text)["config"]["n_banks"] == 16


class TestDiff:
    def test_no_changes(self):
        chip = Chip()
        assert diff_snapshots(snapshot(chip), snapshot(chip)) == []

    def test_changes_located(self):
        chip = Chip()
        before = snapshot(chip)
        chip.memory.access(0, 0, make_effective(0x40, IG_ALL), 8, True)
        after = snapshot(chip)
        changes = diff_snapshots(before, after)
        assert changes
        assert any("caches" in change for change in changes)

    def test_nested_paths_in_output(self):
        before = {"a": {"b": 1}}
        after = {"a": {"b": 2}}
        assert diff_snapshots(before, after) == ["a.b: 1 -> 2"]
