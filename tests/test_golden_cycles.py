"""Golden cycle-count regression tests.

The engine fast paths (run-list scheduling, threaded-code dispatch,
allocation-free memory accesses) are pure host-side optimizations: they
must not move a single simulated cycle. These tests pin the **exact**
final cycle counts of representative runs — Table 2 microbenchmark
chains through the ISA interpreter, and the paper workloads through the
direct-execution runtime — so any change that shifts timing, however
plausible, fails loudly instead of silently redrawing the figures.

If one of these numbers changes, the change is either a timing-model fix
(update the golden *and* say why in the commit) or a fast-path bug
(fix the fast path).
"""

import pytest

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter
from repro.workloads.fft import FFTParams, run_fft
from repro.workloads.radix import RadixParams, run_radix
from repro.workloads.stream import StreamParams, run_stream


# ---------------------------------------------------------------------------
# Table 2 microbenchmark chains (ISA interpreter)
#
# Each case is a dependent 8-instruction chain (plus setup) so the
# pinned number exercises issue, scoreboard and latency together:
# (name, setup, repeated body, model_fetch, (final_cycle, max_ready)).
# ---------------------------------------------------------------------------
_CHAINS = [
    ("alu", "addi r3, r0, 3\naddi r4, r0, 1", "add r3, r3, r4",
     False, (11, 10)),
    ("mul", "addi r3, r0, 3\naddi r4, r0, 7", "mul r3, r3, r4",
     False, (46, 50)),
    ("div", "addi r3, r0, 1000\naddi r4, r0, 1", "div r3, r3, r4",
     False, (267, 266)),
    ("fadd", "addi r3, r0, 1\ncvtif r10, r3\ncvtif r12, r3",
     "fadd r10, r10, r12", False, (52, 56)),
    ("fmadd",
     "addi r3, r0, 1\ncvtif r10, r3\ncvtif r12, r3\ncvtif r14, r3",
     "fmadd r10, r12, r14", False, (81, 89)),
    ("fsqrt", "addi r3, r0, 1\ncvtif r10, r3", "fsqrt r12, r10",
     False, (456, 455)),
]


#: Both dispatchers must land on the same goldens: the block compiler
#: (repro.isa.blocks) is a host-side optimization with per-instruction
#: threaded code as its reference semantics.
_DISPATCHERS = pytest.mark.parametrize(
    "block_dispatch", [False, True], ids=["threaded", "blocks"]
)


@_DISPATCHERS
@pytest.mark.parametrize(
    "setup,body,model_fetch,golden",
    [case[1:] for case in _CHAINS],
    ids=[case[0] for case in _CHAINS],
)
def test_isa_chain_goldens(setup, body, model_fetch, golden,
                           block_dispatch):
    source = setup + "\n" + "\n".join([body] * 8) + "\nhalt\n"
    chip = Chip(ChipConfig())
    interpreter = Interpreter(chip, model_fetch=model_fetch,
                              block_dispatch=block_dispatch)
    state = interpreter.add_thread(0, assemble(source))
    final = interpreter.run()
    assert (final, max(state.ready)) == golden


@_DISPATCHERS
def test_pointer_chase_golden(block_dispatch):
    """Dependent loads with instruction fetch modeled (PIB + I-cache)."""
    chip = Chip(ChipConfig())
    base = 0x800
    for i in range(16):
        chip.memory.backing.store_u32(
            base + 4 * i, base + 4 * ((i + 1) % 16)
        )
    source = "addi r5, r0, 2048\n" + "lw r5, 0(r5)\n" * 9 + "halt\n"
    interpreter = Interpreter(chip, model_fetch=True,
                              block_dispatch=block_dispatch)
    state = interpreter.add_thread(0, assemble(source))
    final = interpreter.run()
    assert (final, max(state.ready)) == (101, 106)


# ---------------------------------------------------------------------------
# Workload goldens (direct-execution runtime)
# ---------------------------------------------------------------------------
def test_stream_triad_block_golden():
    result = run_stream(StreamParams(
        kernel="triad", n_elements=512, n_threads=8, partition="block",
    ))
    assert result.cycles == 2259


def test_stream_triad_cyclic_golden():
    result = run_stream(StreamParams(
        kernel="triad", n_elements=512, n_threads=8, partition="cyclic",
    ))
    assert result.cycles == 2253


def test_fft_hw_barrier_golden():
    result = run_fft(FFTParams(n_points=256, n_threads=4, barrier="hw"))
    assert result.total_cycles == 27100


def test_fft_sw_barrier_golden():
    result = run_fft(FFTParams(n_points=256, n_threads=4, barrier="sw"))
    assert result.total_cycles == 27136


def test_radix_golden():
    result = run_radix(RadixParams(n_keys=512, n_threads=4))
    assert result.cycles == 16831


def test_split_phase_context_matches_generator_ops():
    """The split-phase STREAM loop equals the generator-method timing.

    ``op_begin`` + ``*_finish`` must be event-for-event identical to
    ``yield from ctx.load_f64(...)``; the pinned triad goldens above
    were captured with the generator methods before the split.
    """
    block = run_stream(StreamParams(
        kernel="triad", n_elements=512, n_threads=8, partition="block",
    ))
    scale = run_stream(StreamParams(
        kernel="scale", n_elements=512, n_threads=8, partition="block",
    ))
    add = run_stream(StreamParams(
        kernel="add", n_elements=512, n_threads=8, partition="block",
    ))
    copy = run_stream(StreamParams(
        kernel="copy", n_elements=512, n_threads=8, partition="block",
    ))
    assert (block.cycles, scale.cycles, add.cycles, copy.cycles) == \
        (2259, 1925, 1988, 1539)
