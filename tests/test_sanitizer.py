"""Tests for the coherence sanitizer (repro.sanitizer).

Each seeded-bug test plants exactly one coherence violation and asserts
the sanitizer reports exactly one finding, with provenance; the clean
tests assert the documented flush/invalidate discipline (and the
shipped drivers) produce no findings; the determinism test asserts
observation never perturbs simulated time.
"""

import json

import pytest

from repro.core.chip import Chip
from repro.errors import SanitizerError
from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL, IG_OWN, InterestGroup, Level
from repro.sanitizer import CoherenceSanitizer, env_enabled, session
from repro.sanitizer.report import render_report, session_report, write_json

EA_OWN = make_effective(0x1000, IG_OWN)


@pytest.fixture(autouse=True)
def clean_session():
    """Isolate the process-wide sanitizer session per test."""
    session.reset()
    session.force(False)
    yield
    session.reset()
    session.force(False)


def attached_chip():
    chip = Chip()
    return chip, CoherenceSanitizer().attach(chip)


class TestSeededBugs:
    def test_stale_read_missing_invalidate(self):
        """Writer updates its OWN copy; the reader's replica goes stale."""
        chip, san = attached_chip()
        writer = san.thread_view(chip.memory, tid=0)    # quad 0
        reader = san.thread_view(chip.memory, tid=36)   # quad 9
        writer.load_f64(0, 0, EA_OWN)
        reader.load_f64(10, 9, EA_OWN)
        writer.store_f64(20, 0, EA_OWN, 1.0)
        reader.load_f64(30, 9, EA_OWN)
        assert [f.kind for f in san.findings] == ["stale-read"]
        finding = san.findings[0]
        assert finding.tid == 36 and finding.cache_id == 9
        assert finding.time == 30 and finding.pc is None
        assert finding.writer == {"tid": 0, "pc": None, "time": 20,
                                  "cache": 0, "epoch": 0}
        assert "missing dcbf/dcbi pair" in finding.message

    def test_stale_read_missing_flush(self):
        """Writer never flushes: a miss fill fetches the old image."""
        chip, san = attached_chip()
        writer = san.thread_view(chip.memory, tid=0)
        reader = san.thread_view(chip.memory, tid=4)    # quad 1
        writer.store_f64(10, 0, EA_OWN, 1.0)
        reader.load_f64(20, 1, EA_OWN)
        assert [f.kind for f in san.findings] == ["stale-read"]
        assert "never flushed" in san.findings[0].message

    def test_write_write_conflict(self):
        """Two quads dirty one line in the same barrier epoch."""
        chip, san = attached_chip()
        a = san.thread_view(chip.memory, tid=0)
        b = san.thread_view(chip.memory, tid=4)
        a.store_f64(10, 0, EA_OWN, 1.0)
        b.store_f64(20, 1, EA_OWN, 2.0)
        kinds = [f.kind for f in san.findings]
        assert kinds == ["write-write-conflict"]
        assert san.findings[0].writer["tid"] == 0

    def test_barrier_clears_write_write_conflict(self):
        """A barrier between the writes makes their order well-defined
        (the data still needs its flush to be *seen* — writer b misses
        and the sanitizer reports that separately as a stale fill)."""
        chip, san = attached_chip()
        a = san.thread_view(chip.memory, tid=0)
        b = san.thread_view(chip.memory, tid=4)
        a.store_f64(10, 0, EA_OWN, 1.0)
        san.on_barrier_release([0, 4])
        b.store_f64(20, 1, EA_OWN, 2.0)
        assert "write-write-conflict" not in [f.kind for f in san.findings]

    def test_atomics_exempt_from_conflict_check(self):
        chip, san = attached_chip()
        ea = make_effective(0x2000, IG_ALL)
        a = san.thread_view(chip.memory, tid=0)
        b = san.thread_view(chip.memory, tid=4)
        a.atomic_rmw_u32(10, 0, ea, "add", 1)
        b.atomic_rmw_u32(20, 1, ea, "add", 1)
        assert san.findings == []

    def test_interest_group_misroute(self):
        """Two group bytes that home one physical line differently."""
        chip, san = attached_chip()
        view = san.thread_view(chip.memory, tid=0)
        home = chip.memory.target_cache(IG_ALL, 0x1000, 0)
        other = next(
            byte
            for level in (Level.ONE, Level.PAIR, Level.FOUR)
            for idx in range(32 >> (level.value - 1))
            for byte in [InterestGroup(level,
                                       idx << (level.value - 1)).encode()]
            if chip.memory.target_cache(byte, 0x1000, 0) != home
        )
        view.load_f64(0, 0, make_effective(0x1000, IG_ALL))
        view.load_f64(10, 0, make_effective(0x1000, other))
        assert [f.kind for f in san.findings] == ["ig-misroute"]
        assert "two homes" in san.findings[0].message

    def test_barrier_misuse(self):
        """Arrive without participate trips the SPR-file check."""
        chip, san = attached_chip()
        chip.barrier_spr.participate(0, 0)
        chip.barrier_spr.arrive(0, 0)      # correct pairing: clean
        chip.barrier_spr.arrive(5, 0)      # never participated
        assert [f.kind for f in san.findings] == ["barrier-misuse"]
        assert san.findings[0].tid == 5
        assert "participate" in san.findings[0].message

    def test_isa_thread_findings_carry_pc(self):
        """ISA-interpreter threads report the faulting instruction."""
        chip = Chip(sanitize=True)
        writer = chip.sanitizer.thread_view(chip.memory, tid=4)
        writer.store_u32(0, 1, EA_OWN, 7)   # dirty in quad 1, unflushed
        interp = Interpreter(chip, model_fetch=False)
        interp.add_thread(0, assemble("lw r3, 0(r4)\nhalt"),
                          init_regs={4: 0x1000})
        interp.run()
        stale = [f for f in chip.sanitizer.findings
                 if f.kind == "stale-read"]
        assert len(stale) == 1
        assert stale[0].pc == 0x0 and stale[0].tid == 0


class TestCleanRuns:
    def test_flush_invalidate_discipline_is_clean(self):
        """The documented dcbf/dcbi pairing produces no findings."""
        chip, san = attached_chip()
        writer = san.thread_view(chip.memory, tid=0)
        reader = san.thread_view(chip.memory, tid=36)
        writer.load_f64(0, 0, EA_OWN)
        reader.load_f64(10, 9, EA_OWN)
        writer.store_f64(20, 0, EA_OWN, 1.0)
        writer.flush_line(30, 0, EA_OWN)         # dcbf: write back + drop
        san.on_barrier_release([0, 36])
        reader.invalidate_line(40, 9, EA_OWN)    # dcbi: drop stale copy
        reader.load_f64(50, 9, EA_OWN)           # fresh fill
        assert san.findings == []

    def test_shipped_workloads_clean_and_deterministic(self):
        """FFT (barriers) and STREAM run clean under the sanitizer, at
        byte-identical cycle counts — observation never perturbs time."""
        from repro.workloads.fft import FFTParams, run_fft
        from repro.workloads.stream import StreamParams, run_stream

        fft_params = FFTParams(n_points=64, n_threads=4)
        stream_params = StreamParams(kernel="triad", n_elements=512,
                                     n_threads=4)
        plain_fft = run_fft(fft_params).total_cycles
        plain_stream = run_stream(stream_params).cycles

        session.force(True)
        try:
            sanitized_fft = run_fft(fft_params)
            sanitized_stream = run_stream(stream_params)
        finally:
            session.force(False)
        assert sanitized_fft.total_cycles == plain_fft
        assert sanitized_stream.cycles == plain_stream
        assert session.all_findings() == []
        # The FFT's barriers really were observed.
        assert any(s.global_epoch > 0 for s in session.active())

    def test_quick_experiment_clean(self):
        from repro.experiments.runner import main as experiments_main

        assert experiments_main(
            ["run", "table1", "--quick", "--sanitize"]) == 0


class TestEnablement:
    def test_env_variable_attaches_sanitizer(self, monkeypatch):
        assert Chip().sanitizer is None
        monkeypatch.setenv(session.ENV_VAR, "1")
        assert env_enabled()
        assert Chip().sanitizer is not None
        monkeypatch.setenv(session.ENV_VAR, "off")
        assert Chip().sanitizer is None

    def test_double_attach_rejected(self):
        chip, san = attached_chip()
        with pytest.raises(SanitizerError):
            san.attach(chip)
        with pytest.raises(SanitizerError):
            CoherenceSanitizer().attach(chip)

    def test_workload_cli_sanitize_flag(self, tmp_path, capsys):
        from repro.workloads.runner import main as workloads_main

        report_path = tmp_path / "findings.json"
        assert workloads_main(
            ["stream", "--threads", "4", "--elements", "512",
             "--sanitize", "--sanitize-report", str(report_path)]) == 0
        assert "coherence sanitizer" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["chips_sanitized"] == 1
        assert report["total_findings"] == 0

    def test_experiments_cli_rejects_sanitize_with_jobs(self, capsys):
        from repro.experiments.runner import main as experiments_main

        assert experiments_main(
            ["run", "table1", "--quick", "--sanitize", "-j", "2"]) == 2
        assert "--sanitize requires serial" in capsys.readouterr().err


class TestReporting:
    def test_findings_count_toward_telemetry(self):
        from repro.telemetry.instrument import instrument

        chip = Chip()
        instrument(chip)
        san = CoherenceSanitizer().attach(chip)
        writer = san.thread_view(chip.memory, tid=0)
        reader = san.thread_view(chip.memory, tid=4)
        writer.store_f64(10, 0, EA_OWN, 1.0)
        reader.load_f64(20, 1, EA_OWN)
        snap = chip.telemetry.registry.snapshot()
        assert snap["counters"]['sanitizer.findings{kind="stale-read"}'] == 1

    def test_dedup_keeps_counting_occurrences(self):
        chip, san = attached_chip()
        writer = san.thread_view(chip.memory, tid=0)
        reader = san.thread_view(chip.memory, tid=36)
        writer.store_f64(0, 0, EA_OWN, 1.0)
        reader.load_f64(10, 9, EA_OWN)
        reader.load_f64(20, 9, EA_OWN)   # same stale copy, same version
        assert len(san.findings) == 1
        assert san.counts["stale-read"] == 2
        assert san.occurrences == 2

    def test_session_report_round_trips(self, tmp_path):
        chip, san = attached_chip()
        writer = san.thread_view(chip.memory, tid=0)
        reader = san.thread_view(chip.memory, tid=4)
        writer.store_f64(10, 0, EA_OWN, 1.0)
        reader.load_f64(20, 1, EA_OWN)
        report = session_report()
        assert report["total_findings"] == 1
        assert report["counts"]["stale-read"] == 1
        rendered = render_report(report)
        assert "1 finding(s)" in rendered and "[stale-read]" in rendered
        path = write_json(tmp_path / "r.json", report)
        assert json.loads(path.read_text()) == report

    def test_clear_resets_state_but_not_wiring(self):
        chip, san = attached_chip()
        view = san.thread_view(chip.memory, tid=0)
        view.store_f64(10, 0, EA_OWN, 1.0)
        san.on_barrier_release([0])
        san.clear()
        assert san.findings == [] and san.global_epoch == 0
        assert chip.memory.sanitizer is san
