"""Tests for the remaining Splash-2 kernels: LU, Radix, Ocean, Barnes,
FMM — functional correctness at several thread counts plus scaling."""

import pytest

from repro.errors import WorkloadError
from repro.runtime.kernel import AllocationPolicy
from repro.workloads.barnes import BarnesParams, run_barnes
from repro.workloads.fmm import FMMParams, run_fmm
from repro.workloads.lu import LUParams, run_lu
from repro.workloads.ocean import OceanParams, run_ocean
from repro.workloads.radix import RadixParams, run_radix

BALANCED = AllocationPolicy.BALANCED


class TestLU:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 8])
    def test_factorization_correct(self, n_threads):
        result = run_lu(LUParams(n=32, block=8, n_threads=n_threads))
        assert result.verified

    def test_block_must_divide(self):
        with pytest.raises(WorkloadError):
            LUParams(n=30, block=8)

    def test_scales(self):
        serial = run_lu(LUParams(n=32, block=8, n_threads=1, verify=False,
                                 policy=BALANCED))
        parallel = run_lu(LUParams(n=32, block=8, n_threads=8, verify=False,
                                   policy=BALANCED))
        assert serial.cycles / parallel.cycles > 2.0


class TestRadix:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 16])
    def test_sorts_correctly(self, n_threads):
        result = run_radix(RadixParams(n_keys=1024, n_threads=n_threads))
        assert result.verified

    def test_odd_pass_count(self):
        """12-bit keys with 4-bit digits: 3 passes, final data in dst."""
        result = run_radix(RadixParams(n_keys=512, key_bits=12,
                                       radix_bits=4, n_threads=4))
        assert result.verified

    def test_digits_must_divide(self):
        with pytest.raises(WorkloadError):
            RadixParams(key_bits=10, radix_bits=4)

    def test_scales_sublinearly(self):
        """All-to-all permutation limits Radix (Figure 3's low curve)."""
        serial = run_radix(RadixParams(n_keys=4096, n_threads=1,
                                       verify=False, policy=BALANCED))
        parallel = run_radix(RadixParams(n_keys=4096, n_threads=16,
                                         verify=False, policy=BALANCED))
        speedup = serial.cycles / parallel.cycles
        assert 2.0 < speedup < 16.0


class TestOcean:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 8])
    def test_matches_reference_sweeps(self, n_threads):
        result = run_ocean(OceanParams(grid=18, iterations=2,
                                       n_threads=n_threads))
        assert result.verified

    def test_too_many_threads(self):
        with pytest.raises(WorkloadError):
            OceanParams(grid=10, n_threads=16)

    def test_scales(self):
        serial = run_ocean(OceanParams(grid=34, iterations=2, n_threads=1,
                                       verify=False, policy=BALANCED))
        parallel = run_ocean(OceanParams(grid=34, iterations=2,
                                         n_threads=16, verify=False,
                                         policy=BALANCED))
        assert serial.cycles / parallel.cycles > 6.0


class TestBarnes:
    @pytest.mark.parametrize("n_threads", [1, 4, 8])
    def test_forces_correct(self, n_threads):
        result = run_barnes(BarnesParams(n_bodies=128,
                                         n_threads=n_threads))
        assert result.verified

    def test_theta_bounds(self):
        with pytest.raises(WorkloadError):
            BarnesParams(theta=0.0)

    def test_scales(self):
        serial = run_barnes(BarnesParams(n_bodies=256, n_threads=1,
                                         verify=False, policy=BALANCED))
        parallel = run_barnes(BarnesParams(n_bodies=256, n_threads=16,
                                           verify=False, policy=BALANCED))
        assert serial.cycles / parallel.cycles > 5.0


class TestFMM:
    @pytest.mark.parametrize("n_threads", [1, 4, 8])
    def test_potentials_correct(self, n_threads):
        result = run_fmm(FMMParams(n_bodies=128, levels=3,
                                   n_threads=n_threads))
        assert result.verified

    def test_more_terms_tighter(self):
        """Expansion order controls accuracy (sanity of the math)."""
        import numpy as np
        from repro.workloads.fmm import (
            direct_potential, l2p, m2l, p2m,
        )
        rng = np.random.default_rng(3)
        bodies = [(complex(z.real * 0.1, z.imag * 0.1), 1.0)
                  for z in rng.standard_normal(8)
                  + 1j * rng.standard_normal(8)]
        target = 2.0 + 2.0j
        errors = []
        for terms in (2, 8):
            mp = p2m(bodies, 0j, terms)
            local = m2l(mp, 0j - target, terms)
            approx = l2p(local, target, target)
            exact = direct_potential(target, bodies)
            errors.append(abs(approx - exact))
        assert errors[1] < errors[0]

    def test_level_bounds(self):
        with pytest.raises(WorkloadError):
            FMMParams(levels=1)

    def test_scales(self):
        serial = run_fmm(FMMParams(n_bodies=256, levels=3, n_threads=1,
                                   verify=False, policy=BALANCED))
        parallel = run_fmm(FMMParams(n_bodies=256, levels=3, n_threads=16,
                                     verify=False, policy=BALANCED))
        assert serial.cycles / parallel.cycles > 4.0
