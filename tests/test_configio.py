"""Tests for configuration serialization."""

import pytest

from repro.config import ChipConfig, LatencyTable
from repro.configio import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    load_config,
    save_config,
)
from repro.errors import ConfigError


class TestRoundtrip:
    def test_paper_config(self):
        config = ChipConfig.paper()
        again = config_from_json(config_to_json(config))
        assert again == config

    def test_custom_config(self):
        config = ChipConfig(
            n_threads=64, threads_per_quad=8, quads_per_icache=1,
            n_memory_banks=8,
            latency=LatencyTable(fp_add=(2, 7)),
            store_miss_fetches_line=True,
        )
        again = config_from_json(config_to_json(config))
        assert again == config
        assert again.latency.fp_add == (2, 7)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "chip.json"
        save_config(ChipConfig.small(), str(path))
        assert load_config(str(path)) == ChipConfig.small()


class TestValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"n_threads": 128, "warp_size": 32})

    def test_unknown_latency_row_rejected(self):
        data = config_to_dict(ChipConfig.paper())
        data["latency"]["teleport"] = [0, 0]
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_invalid_geometry_rejected(self):
        data = config_to_dict(ChipConfig.paper())
        data["n_threads"] = 130
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigError):
            config_from_json("{nope")
        with pytest.raises(ConfigError):
            config_from_json("[1, 2]")

    def test_dict_is_json_safe(self):
        import json
        json.dumps(config_to_dict(ChipConfig.paper()))
