"""Tests for the STREAM workload: correctness of every mode plus the
paper's qualitative performance relationships."""

import pytest

from repro.config import ChipConfig
from repro.errors import WorkloadError
from repro.runtime.kernel import AllocationPolicy
from repro.workloads.common import block_ranges, cyclic_group_indices
from repro.workloads.stream import (
    BYTES_PER_ELEMENT,
    STREAM_KERNELS,
    StreamParams,
    run_stream,
)


class TestPartitioning:
    def test_block_ranges_cover_everything(self):
        ranges = block_ranges(100, 7)
        covered = [i for r in ranges for i in r]
        assert covered == list(range(100))

    def test_block_alignment(self):
        ranges = block_ranges(1000, 7, align=8)
        for r in ranges[:-1]:
            assert r.stop % 8 == 0

    def test_cyclic_groups_cover_everything(self):
        indices = cyclic_group_indices(1000, 24)
        covered = sorted(i for lst in indices for i in lst)
        assert covered == list(range(1000))

    def test_cyclic_no_duplicates_ragged_group(self):
        indices = cyclic_group_indices(1024, 126)  # last group has 6 lanes
        covered = sorted(i for lst in indices for i in lst)
        assert covered == list(range(1024))

    def test_cyclic_neighbours_share_lines(self):
        """Lanes of one group interleave element-by-element."""
        indices = cyclic_group_indices(640, 16)
        assert indices[0][0] + 1 == indices[1][0]

    def test_zero_threads_rejected(self):
        with pytest.raises(WorkloadError):
            block_ranges(10, 0)


class TestParamValidation:
    def test_unknown_kernel(self):
        with pytest.raises(WorkloadError):
            StreamParams(kernel="sum")

    def test_local_requires_block(self):
        with pytest.raises(WorkloadError):
            StreamParams(partition="cyclic", local_caches=True)

    def test_bad_unroll(self):
        with pytest.raises(WorkloadError):
            StreamParams(unroll=0)

    def test_counted_bytes(self):
        assert StreamParams(kernel="copy", n_elements=100).counted_bytes \
            == 1600
        assert StreamParams(kernel="add", n_elements=100).counted_bytes \
            == 2400
        params = StreamParams(kernel="copy", n_elements=100, n_threads=4,
                              independent=True)
        assert params.counted_bytes == 6400


@pytest.mark.parametrize("kernel", STREAM_KERNELS)
class TestFunctionalCorrectness:
    def test_single_thread(self, kernel):
        result = run_stream(StreamParams(kernel=kernel, n_elements=512,
                                         n_threads=1))
        assert result.verified

    def test_multi_thread_block(self, kernel):
        result = run_stream(StreamParams(kernel=kernel, n_elements=1024,
                                         n_threads=16))
        assert result.verified

    def test_multi_thread_cyclic(self, kernel):
        result = run_stream(StreamParams(kernel=kernel, n_elements=1024,
                                         n_threads=16, partition="cyclic"))
        assert result.verified

    def test_local_caches(self, kernel):
        result = run_stream(StreamParams(kernel=kernel, n_elements=1024,
                                         n_threads=16, local_caches=True))
        assert result.verified

    def test_unrolled(self, kernel):
        result = run_stream(StreamParams(kernel=kernel, n_elements=1000,
                                         n_threads=16, unroll=4))
        assert result.verified

    def test_independent(self, kernel):
        result = run_stream(StreamParams(kernel=kernel, n_elements=256,
                                         n_threads=8, independent=True))
        assert result.verified


class TestRaggedSizes:
    def test_non_divisible_elements(self):
        result = run_stream(StreamParams(kernel="triad", n_elements=1021,
                                         n_threads=16))
        assert result.verified

    def test_unroll_tail(self):
        result = run_stream(StreamParams(kernel="copy", n_elements=1021,
                                         n_threads=16, unroll=4))
        assert result.verified


class TestPaperRelationships:
    """The qualitative orderings Section 3.2 reports."""

    THREADS = 32
    PER_THREAD = 600

    def _run(self, **overrides):
        params = StreamParams(
            kernel=overrides.pop("kernel", "copy"),
            n_elements=overrides.pop("n_elements",
                                     self.PER_THREAD * self.THREADS),
            n_threads=overrides.pop("n_threads", self.THREADS),
            **overrides,
        )
        return run_stream(params)

    def test_blocked_beats_cyclic(self):
        blocked = self._run(partition="block")
        cyclic = self._run(partition="cyclic")
        assert blocked.bandwidth > cyclic.bandwidth

    def test_local_beats_shared(self):
        shared = self._run(partition="block")
        local = self._run(partition="block", local_caches=True)
        assert local.bandwidth > shared.bandwidth

    def test_unrolling_helps_in_cache(self):
        plain = self._run(local_caches=True, n_elements=32 * 150,
                          warmup=True)
        unrolled = self._run(local_caches=True, unroll=4,
                             n_elements=32 * 150, warmup=True)
        assert unrolled.bandwidth > plain.bandwidth * 1.3

    def test_balanced_helps_partial_occupancy(self):
        sequential = self._run(local_caches=True,
                               policy=AllocationPolicy.SEQUENTIAL)
        balanced = self._run(local_caches=True,
                             policy=AllocationPolicy.BALANCED)
        assert balanced.bandwidth > sequential.bandwidth

    def test_out_of_cache_near_memory_peak(self):
        """126 threads, large vectors: plateau at ~the 42 GB/s bank peak."""
        result = run_stream(StreamParams(
            kernel="copy", n_elements=126 * 1000, n_threads=126,
        ))
        peak = ChipConfig.paper().peak_memory_bandwidth
        assert 0.6 * peak < result.bandwidth < 1.25 * peak

    def test_memory_traffic_accounted(self):
        result = self._run(kernel="copy", warmup=False)
        # Copy under write-validate moves ~counted bytes through banks
        # (line reads + writebacks), modulo lines still dirty at the end.
        assert result.memory_traffic_bytes > 0
        assert result.memory_traffic_bytes < 3 * result.total_bytes


class TestStoreMissAblation:
    def test_fetch_on_store_miss_saturates_banks_sooner(self):
        """At full occupancy the banks are the bottleneck; fetching lines
        that stores fully overwrite wastes a third of Copy's bank
        bandwidth (DESIGN.md section 3)."""
        base = ChipConfig.paper()
        fetch = base.with_store_miss_fetch(True)
        fast = run_stream(StreamParams(kernel="copy",
                                       n_elements=126 * 800,
                                       n_threads=126),
                          config=base)
        slow = run_stream(StreamParams(kernel="copy",
                                       n_elements=126 * 800,
                                       n_threads=126),
                          config=fetch)
        assert fast.bandwidth > slow.bandwidth * 1.1
        # The extra line fetches show up as real bank traffic.
        assert slow.memory_traffic_bytes > fast.memory_traffic_bytes * 1.3
