"""Tests for the workload command-line runner."""

import pytest

from repro.workloads.runner import main


class TestWorkloadCli:
    def test_stream(self, capsys):
        assert main(["stream", "--kernel", "copy", "--threads", "4",
                     "--elements", "512"]) == 0
        out = capsys.readouterr().out
        assert "GB/s" in out
        assert "verified=True" in out

    def test_stream_with_utilization(self, capsys):
        assert main(["stream", "--threads", "4", "--elements", "512",
                     "--utilization"]) == 0
        out = capsys.readouterr().out
        assert "Chip utilization" in out
        assert "memory banks busy" in out

    def test_fft(self, capsys):
        assert main(["fft", "--points", "64", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out

    @pytest.mark.parametrize("argv", [
        ["lu", "--n", "16", "--threads", "2"],
        ["radix", "--keys", "512", "--threads", "2"],
        ["ocean", "--grid", "18", "--threads", "2"],
        ["barnes", "--bodies", "64", "--threads", "2"],
        ["fmm", "--bodies", "64", "--levels", "2", "--threads", "2"],
        ["md", "--particles", "64", "--threads", "2"],
        ["raytrace", "--width", "8", "--height", "8", "--threads", "2"],
        ["dgemm", "--n", "16", "--threads", "2"],
        ["dgemm", "--n", "16", "--threads", "2", "--no-scratchpad"],
    ])
    def test_every_workload_runs_and_verifies(self, argv, capsys):
        assert main(argv) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_balanced_policy_flag(self, capsys):
        assert main(["md", "--particles", "64", "--threads", "4",
                     "--policy", "balanced"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["make-coffee"])
