"""Tests for repro.sampling: config, statistics, and sampled runs.

The load-bearing assertions are the differential ones: functional
fast-forward must leave *byte-identical* architectural state to the
exact engine (sampling approximates time, never data), and the default
path must be untouched by the feature — exact runs neither import the
package nor change cycle counts (see ``docs/sampled-sim.md``).
"""

import pytest

from repro.core.chip import Chip
from repro.errors import ConfigError
from repro.isa import Interpreter
from repro.isa.kernels import stream_kernel_program, stream_register_setup
from repro.memory.address import make_effective
from repro.memory.interest_groups import IG_ALL
from repro.sampling import (SAMPLE_ENV, SamplingConfig, build_estimate,
                            mean_ci, resolve_config)
from repro.sampling.validate import validate_workload

#: Small enough to keep the suite fast, large enough to span several
#: sampling units under TINY below (~5.4k insns per thread).
TINY_PARAMS = {"n_threads": 4, "n_per_thread": 600}
TINY = SamplingConfig(warmup_insns=64, measure_insns=64,
                      period_insns=512, chunk_insns=256)


def _stream_interp(n_threads: int = 4, n_per_thread: int = 600):
    """A small ISA STREAM triad run; returns (chip, interp, dst bases)."""
    chip = Chip()
    interp = Interpreter(chip, model_fetch=False)
    program = stream_kernel_program("triad", 1)
    dsts = []
    for t in range(n_threads):
        src = 0x10000 + t * 0x4000
        src2 = 0x100000 + t * 0x4000
        dst = 0x200000 + t * 0x4000
        chip.memory.backing.f64_view(src, n_per_thread)[:] = 2.0
        chip.memory.backing.f64_view(src2, n_per_thread)[:] = 5.0
        init_regs, init_doubles = stream_register_setup(
            "triad", make_effective(src, IG_ALL),
            make_effective(src2, IG_ALL), make_effective(dst, IG_ALL),
            n_per_thread)
        interp.add_thread(t, program, init_regs, init_doubles)
        dsts.append(dst)
    return chip, interp, dsts


# ---------------------------------------------------------------------------
# Configuration and spec parsing
# ---------------------------------------------------------------------------
class TestConfig:
    def test_spec_on_off_words(self):
        for word in ("1", "true", "on", "yes", " ON "):
            assert SamplingConfig.from_spec(word) == SamplingConfig()
        for word in ("", "0", "false", "off", "no"):
            assert SamplingConfig.from_spec(word) is None

    def test_spec_key_values_including_jitter_and_horizon(self):
        config = SamplingConfig.from_spec(
            "warmup=64,measure=32,period=256,chunk=128,"
            "jitter=16,horizon=512,confidence=0.99")
        assert config == SamplingConfig(
            warmup_insns=64, measure_insns=32, period_insns=256,
            chunk_insns=128, jitter_insns=16, horizon_insns=512,
            confidence=0.99)

    def test_spec_rejects_unknown_key_and_bad_value(self):
        with pytest.raises(ConfigError, match="expected key=value"):
            SamplingConfig.from_spec("warmups=64")
        with pytest.raises(ConfigError, match="bad CYCLOPS_SAMPLE value"):
            SamplingConfig.from_spec("warmup=lots")

    def test_period_must_leave_room_to_fast_forward(self):
        with pytest.raises(ConfigError, match="period_insns must exceed"):
            SamplingConfig(warmup_insns=512, measure_insns=256,
                           period_insns=768)

    def test_jitter_and_horizon_validation(self):
        with pytest.raises(ConfigError, match="jitter_insns"):
            SamplingConfig(jitter_insns=-1)
        with pytest.raises(ConfigError, match="horizon_insns"):
            SamplingConfig(horizon_insns=-5)

    def test_resolved_jitter(self):
        # Auto: min(1024, half the fast-forward span).
        assert SamplingConfig().resolved_jitter == 1024
        assert TINY.resolved_jitter == (512 - 128) // 2
        # Explicit: clamped below the span so budgets stay positive.
        assert SamplingConfig(jitter_insns=50000).resolved_jitter \
            == 8192 - 512 - 256 - 1
        assert SamplingConfig(jitter_insns=0).resolved_jitter == 0

    def test_resolved_horizon(self):
        assert SamplingConfig().resolved_horizon == 4096
        assert SamplingConfig(horizon_insns=128).resolved_horizon == 128

    def test_resolve_config(self):
        assert resolve_config(None) is None
        assert resolve_config(False) is None
        assert resolve_config(True) == SamplingConfig()
        assert resolve_config("period=16384") == \
            SamplingConfig(period_insns=16384)
        assert resolve_config(TINY) is TINY
        with pytest.raises(ConfigError, match="sampled="):
            resolve_config(42)


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------
class TestStats:
    def test_single_value_has_no_interval(self):
        mean, half = mean_ci([0.5])
        assert mean == 0.5 and half == 0.0

    def test_known_interval(self):
        mean, half = mean_ci([1.0, 2.0, 3.0], 0.95)
        assert mean == pytest.approx(2.0)
        # t(0.95, df=2) = 4.303; s = 1, n = 3.
        assert half == pytest.approx(4.303 / 3 ** 0.5, rel=1e-3)

    def test_weighted_mean_matches_manual(self):
        mean, _ = mean_ci([1.0, 3.0], weights=[1, 3])
        assert mean == pytest.approx(2.5)

    def test_zero_weight_unit_is_excluded(self):
        # The drain-unit case: a wild CPI with weight 0 cannot move the
        # mean, and it does not count toward the degrees of freedom.
        mean, half = mean_ci([1.0, 100.0], weights=[5, 0])
        assert mean == pytest.approx(1.0)
        assert half == 0.0  # one effective unit: no interval

    def test_weight_validation(self):
        with pytest.raises(ConfigError):
            mean_ci([1.0, 2.0], weights=[1])
        with pytest.raises(ConfigError):
            mean_ci([1.0, 2.0], weights=[1, -1])
        with pytest.raises(ConfigError):
            mean_ci([1.0, 2.0], weights=[0, 0])


# ---------------------------------------------------------------------------
# Estimate assembly
# ---------------------------------------------------------------------------
class TestBuildEstimate:
    def test_fully_detailed_run_is_exact(self):
        estimate = build_estimate([0.2], total_insns=768,
                                  measured_insns=256, warmup_insns=512,
                                  detailed_cycles=1000, config=TINY)
        assert estimate.exact
        assert estimate.estimated_cycles == 1000
        assert estimate.ci_halfwidth == 0.0
        assert estimate.ff_insns == 0

    def test_extrapolation_prices_ff_at_mean_cpi(self):
        estimate = build_estimate([0.5, 0.5], total_insns=2000,
                                  measured_insns=500, warmup_insns=500,
                                  detailed_cycles=600, config=TINY)
        assert not estimate.exact
        assert estimate.ff_insns == 1000
        assert estimate.estimated_cycles == 600 + 500
        assert estimate.ci_low <= estimate.estimated_cycles \
            <= estimate.ci_high

    def test_no_units_with_ff_remaining_is_an_error(self):
        with pytest.raises(ConfigError, match="cannot extrapolate"):
            build_estimate([], total_insns=100, measured_insns=0,
                           warmup_insns=0, detailed_cycles=0, config=TINY)

    def test_broken_accounting_is_an_error(self):
        with pytest.raises(ConfigError, match="accounting"):
            build_estimate([0.5], total_insns=10, measured_insns=20,
                           warmup_insns=0, detailed_cycles=0, config=TINY)

    def test_to_dict_records_resolved_knobs(self):
        data = build_estimate([0.5, 0.6], total_insns=2000,
                              measured_insns=500, warmup_insns=500,
                              detailed_cycles=600, config=TINY).to_dict()
        assert data["config"]["jitter_insns"] == TINY.resolved_jitter
        assert data["config"]["horizon_insns"] == TINY.resolved_horizon
        assert data["ci_low"] <= data["estimated_cycles"] <= data["ci_high"]


# ---------------------------------------------------------------------------
# Sampled runs: exactness, accounting, opt-in gating
# ---------------------------------------------------------------------------
class TestSampledRun:
    def test_state_byte_identical_and_estimate_reasonable(self):
        result = validate_workload("stream", TINY, params=TINY_PARAMS)
        assert result.state_matches
        assert result.estimate.n_units > 2
        assert abs(result.error) < 0.10
        assert result.estimate.ci_low <= result.estimate.estimated_cycles \
            <= result.estimate.ci_high

    def test_total_instructions_match_exact_run(self):
        _, exact_interp, _ = _stream_interp()
        exact_interp.run()
        exact_insns = sum(s.tu.counters.instructions
                          for s in exact_interp.states.values())

        _, interp, _ = _stream_interp()
        estimate = interp.run_sampled(TINY)
        assert estimate.total_insns == exact_insns
        assert estimate.total_insns == (estimate.measured_insns
                                        + estimate.warmup_insns
                                        + estimate.ff_insns)

    def test_jitter_zero_and_horizon_zero_still_exact_state(self):
        config = SamplingConfig(warmup_insns=64, measure_insns=64,
                                period_insns=512, chunk_insns=256,
                                jitter_insns=0, horizon_insns=0)
        result = validate_workload("stream", config, params=TINY_PARAMS)
        assert result.state_matches

    def test_run_returns_estimate_and_sets_sampling(self):
        _, interp, _ = _stream_interp()
        cycles = interp.run(sampled=TINY)
        assert interp.sampling is not None
        assert cycles == interp.sampling.estimated_cycles

    def test_exact_run_leaves_sampling_unset(self):
        _, interp, _ = _stream_interp()
        interp.run()
        assert interp.sampling is None

    def test_shared_program_unpolluted_by_sampled_run(self):
        # The block compiler caches tables on the Program; a sampled
        # run over the same object must not perturb later exact runs.
        _, golden, _ = _stream_interp()
        golden_cycles = golden.run()
        _, sampled, _ = _stream_interp()
        sampled.run_sampled(TINY)
        _, again, _ = _stream_interp()
        assert again.run() == golden_cycles

    def test_env_opt_in_and_explicit_override(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "warmup=64,measure=64,period=512")
        _, interp, _ = _stream_interp()
        interp.run()
        assert interp.sampling is not None

        _, exact, _ = _stream_interp()
        exact.run(sampled=False)  # explicit override beats the env
        assert exact.sampling is None

        monkeypatch.setenv(SAMPLE_ENV, "0")
        _, off, _ = _stream_interp()
        off.run()
        assert off.sampling is None

    def test_env_off_runs_byte_identical_to_default(self, monkeypatch):
        monkeypatch.delenv(SAMPLE_ENV, raising=False)
        chip_a, interp_a, dsts = _stream_interp()
        cycles_a = interp_a.run()
        monkeypatch.setenv(SAMPLE_ENV, "off")
        chip_b, interp_b, _ = _stream_interp()
        assert interp_b.run() == cycles_a
        n = TINY_PARAMS["n_per_thread"]
        for dst in dsts:
            assert bytes(chip_b.memory.backing.f64_view(dst, n)) \
                == bytes(chip_a.memory.backing.f64_view(dst, n))

    def test_sampled_until_rejected(self):
        _, interp, _ = _stream_interp()
        with pytest.raises(ConfigError, match="until"):
            interp.run(until=1000, sampled=TINY)

    def test_sampled_under_sanitizer_rejected(self):
        _, interp, _ = _stream_interp()
        interp.chip.memory.sanitizer = object()
        with pytest.raises(ConfigError, match="sanitizer"):
            interp.run_sampled(TINY)

    def test_run_without_threads_rejected(self):
        interp = Interpreter(Chip(), model_fetch=False)
        with pytest.raises(ConfigError, match="add_thread"):
            interp.run_sampled(TINY)

    def test_multichip_rejects_sampling_with_guidance(self, monkeypatch):
        from repro.system.multichip import MultiChipSystem
        from repro.system.topology import Topology

        system = MultiChipSystem(Topology(1, 1, 1))
        with pytest.raises(ConfigError, match="Interpreter.run"):
            system.run(sampled=True)
        monkeypatch.setenv(SAMPLE_ENV, "1")
        system2 = MultiChipSystem(Topology(1, 1, 1))
        with pytest.raises(ConfigError, match=SAMPLE_ENV):
            system2.run()
        system2.run(sampled=False)  # explicit override still works


# ---------------------------------------------------------------------------
# Functional warming plumbing
# ---------------------------------------------------------------------------
class TestWarming:
    def test_thread_state_warming_hooks(self):
        _, interp, _ = _stream_interp(n_threads=1, n_per_thread=8)
        state = interp.states[0]
        assert state.warm_fn == state.memory.warm_access
        assert state.warm_memo == {}

    def test_warm_memo_populated_only_by_sampled_runs(self):
        _, exact, _ = _stream_interp(n_threads=1, n_per_thread=64)
        exact.run()
        assert all(not s.warm_memo for s in exact.states.values())

        _, sampled, _ = _stream_interp()
        sampled.run_sampled(TINY)
        assert any(s.warm_memo for s in sampled.states.values())

    def test_warm_access_counts_as_untimed_touch(self):
        chip = Chip()
        cache = chip.memory.caches[0]
        before_hits, before_misses = cache.hits, cache.misses
        effective = make_effective(0x10000, 0)  # ig 0 -> local quad 0
        chip.memory.warm_access(0, effective, False)
        chip.memory.warm_access(0, effective, False)
        # First touch misses (allocates the line), second hits — all
        # without advancing any clock.
        assert cache.hits == before_hits + 1
        assert cache.misses == before_misses + 1
