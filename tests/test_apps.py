"""Tests for the target-application workloads the paper's conclusion
names: linear algebra (DGEMM + scratchpad), molecular dynamics,
raytracing."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.dgemm import DgemmParams, run_dgemm
from repro.workloads.md import MDParams, run_md
from repro.workloads.raytrace import RayTraceParams, run_raytrace


class TestDgemm:
    @pytest.mark.parametrize("n_threads", [1, 4, 8])
    def test_product_correct(self, n_threads):
        result = run_dgemm(DgemmParams(n=16, block=8, n_threads=n_threads))
        assert result.verified

    def test_without_scratchpad_also_correct(self):
        result = run_dgemm(DgemmParams(n=16, block=8, n_threads=4,
                                       use_scratchpad=False))
        assert result.verified

    def test_scratchpad_staging_is_faster(self):
        """The paper's fast-memory claim: explicit staging beats the
        'dynamic, and often hard to control, cache behavior'."""
        cached = run_dgemm(DgemmParams(n=32, block=8, n_threads=8,
                                       use_scratchpad=False))
        staged = run_dgemm(DgemmParams(n=32, block=8, n_threads=8,
                                       use_scratchpad=True))
        assert staged.cycles < cached.cycles

    def test_block_must_divide(self):
        with pytest.raises(WorkloadError):
            DgemmParams(n=30, block=8)

    def test_tiles_must_fit_lane_region(self):
        with pytest.raises(WorkloadError):
            DgemmParams(n=32, block=16, use_scratchpad=True)

    def test_quad_mates_do_not_corrupt_each_other(self):
        """Four threads on one quad share the scratchpad; per-lane
        regions keep their tiles separate."""
        from repro.runtime.kernel import AllocationPolicy
        result = run_dgemm(DgemmParams(
            n=16, block=8, n_threads=4,
            policy=AllocationPolicy.SEQUENTIAL,  # all in quad 0
        ))
        assert result.verified


class TestMD:
    @pytest.mark.parametrize("n_threads", [1, 4, 8])
    def test_forces_match_direct(self, n_threads):
        result = run_md(MDParams(n_particles=64, n_threads=n_threads))
        assert result.verified

    def test_interactions_symmetric_count(self):
        """Every pair within cutoff is visited from both sides."""
        result = run_md(MDParams(n_particles=64, n_threads=2))
        assert result.interactions % 2 == 0
        assert result.interactions > 0

    def test_cutoff_bounds(self):
        with pytest.raises(WorkloadError):
            MDParams(cutoff=0.0)
        with pytest.raises(WorkloadError):
            MDParams(cutoff=10.0, box=16.0)

    def test_scales(self):
        serial = run_md(MDParams(n_particles=128, n_threads=1,
                                 verify=False))
        parallel = run_md(MDParams(n_particles=128, n_threads=16,
                                   verify=False))
        assert serial.cycles / parallel.cycles > 6.0


class TestRayTrace:
    def test_pixel_exact(self):
        result = run_raytrace(RayTraceParams(width=16, height=12,
                                             n_threads=4))
        assert result.verified

    def test_single_thread(self):
        result = run_raytrace(RayTraceParams(width=8, height=8,
                                             n_threads=1))
        assert result.verified

    def test_image_bounds(self):
        with pytest.raises(WorkloadError):
            RayTraceParams(width=0)
        with pytest.raises(WorkloadError):
            RayTraceParams(width=2, height=2, n_threads=8)

    def test_scales_across_quads(self):
        """Balanced threads get private div/sqrt units: near-linear."""
        serial = run_raytrace(RayTraceParams(width=24, height=16,
                                             n_threads=1, verify=False))
        parallel = run_raytrace(RayTraceParams(width=24, height=16,
                                               n_threads=8, verify=False))
        assert serial.cycles / parallel.cycles > 5.0

    def test_div_sqrt_unit_limits_in_quad_scaling(self):
        """Sequential packing: four pixels' sqrt/div serialize on one
        non-pipelined unit, so in-quad speedup is visibly sublinear."""
        from repro.runtime.kernel import AllocationPolicy
        serial = run_raytrace(RayTraceParams(width=24, height=16,
                                             n_threads=1, verify=False))
        packed = run_raytrace(RayTraceParams(
            width=24, height=16, n_threads=4, verify=False,
            policy=AllocationPolicy.SEQUENTIAL,
        ))
        speedup = serial.cycles / packed.cycles
        assert speedup < 3.0
