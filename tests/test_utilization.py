"""Tests for the utilization reporting."""

import pytest

from repro.analysis.utilization import utilization
from repro.core.chip import Chip
from repro.runtime.kernel import AllocationPolicy, Kernel
from repro.workloads.stream import StreamParams, run_stream


class TestUtilization:
    def test_idle_chip_is_zero(self):
        chip = Chip()
        report = utilization(chip, 1000)
        assert report.fpu_add == 0.0
        assert report.banks == 0.0
        assert report.ipc == 0.0

    def test_fma_stream_saturates_both_pipes(self):
        chip = Chip()
        kernel = Kernel(chip)

        def body(ctx):
            yield from ctx.fp_stream(500, op="fma")

        kernel.spawn(body)
        cycles = kernel.run()
        report = utilization(chip, cycles)
        # One thread keeps one of 32 FPUs ~fully busy.
        assert report.fpu_add > 0.9 / 32
        assert report.fpu_mul > 0.9 / 32
        assert report.flops == 1000

    def test_stream_pins_the_banks(self):
        """Out-of-cache STREAM: banks busy, FPU idle (the paper's
        memory-bound regime)."""
        chip = Chip()
        result = run_stream(StreamParams(
            kernel="copy", n_elements=64 * 800, n_threads=64,
            policy=AllocationPolicy.BALANCED,
        ), chip=chip)
        report = utilization(chip, result.cycles)
        assert report.banks > 0.25
        assert report.fpu_add < 0.05
        assert report.kind_counts["local_miss"] \
            + report.kind_counts["remote_miss"] > 0

    def test_render_mentions_everything(self):
        chip = Chip()
        kernel = Kernel(chip)

        def body(ctx):
            yield from ctx.fp_add()
            yield from ctx.load_f64(ctx.ea(0x100))

        kernel.spawn(body)
        cycles = kernel.run()
        text = utilization(chip, max(cycles, 1)).render()
        assert "FPU adder" in text
        assert "memory banks" in text
        assert "accesses:" in text

    def test_ipc_and_flops_rates(self):
        chip = Chip()
        kernel = Kernel(chip)

        def body(ctx):
            ctx.charge_ops(100)
            return None
            yield  # pragma: no cover

        kernel.spawn(body)
        kernel.run()
        report = utilization(chip, 100)
        assert report.ipc == pytest.approx(1.0)
        assert report.flops_per_cycle == 0.0
