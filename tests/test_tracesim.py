"""Tests for the trace-driven memory explorer."""

import pytest

from repro.errors import WorkloadError
from repro.memory.interest_groups import InterestGroup, Level
from repro.memory.tracesim import (
    TraceAccess,
    pointer_chase_trace,
    replay,
    retarget,
    strided_trace,
)


class TestReplay:
    def test_strided_sweep_hits_within_lines(self):
        """Sequential doubles: 1 miss + 7 hits per 64-byte line."""
        trace = strided_trace(base=0, stride=8, count=256)
        profile = replay(trace)
        assert profile.accesses == 256
        assert profile.misses == 256 // 8
        assert profile.hit_rate == pytest.approx(7 / 8)

    def test_second_pass_all_hits(self):
        trace = strided_trace(0, 8, 128, ig_byte=0)  # own cache, 1 KB
        memory = None
        from repro.memory.subsystem import MemorySubsystem
        from repro.config import ChipConfig
        memory = MemorySubsystem(ChipConfig.paper())
        replay(trace, memory=memory)
        second = replay(trace, memory=memory)
        assert second.hit_rate == 1.0

    def test_latency_reflects_interest_group(self):
        """The Table 1 placement study in four lines."""
        base_trace = strided_trace(0, 8, 512, quad=0)
        own = replay(retarget(base_trace, InterestGroup(Level.OWN)))
        pinned_remote = replay(retarget(base_trace,
                                        InterestGroup(Level.ONE, 20)))
        spread = replay(retarget(base_trace, InterestGroup(Level.ALL)))
        assert own.mean_load_latency < spread.mean_load_latency
        assert own.mean_load_latency < pinned_remote.mean_load_latency
        assert own.remote == 0
        assert pinned_remote.local == 0

    def test_traffic_is_line_fills(self):
        profile = replay(strided_trace(0, 64, 32))  # one miss per access
        assert profile.memory_traffic_bytes == 32 * 64

    def test_stores_write_validate(self):
        profile = replay(strided_trace(0, 8, 64, is_store=True))
        assert profile.memory_traffic_bytes == 0  # no fetch, no writeback yet

    def test_pointer_chase(self):
        addresses = [0, 4096, 8192, 0]
        profile = replay(pointer_chase_trace(addresses))
        assert profile.accesses == 4
        assert profile.hits == 1  # the revisit of 0

    def test_issue_interval_spreads_time(self):
        fast = replay(strided_trace(0, 64, 16), issue_interval=1)
        slow = replay(strided_trace(0, 64, 16), issue_interval=100)
        assert slow.finish_time > fast.finish_time

    def test_bad_interval(self):
        with pytest.raises(WorkloadError):
            replay([], issue_interval=0)

    def test_kind_counts_exposed(self):
        profile = replay(strided_trace(0, 8, 64, ig_byte=0))
        assert profile.kind_counts.get("local_miss", 0) > 0


class TestRetarget:
    def test_preserves_physical_and_kind(self):
        trace = strided_trace(0x1000, 8, 4, is_store=True)
        again = retarget(trace, InterestGroup(Level.ONE, 3))
        from repro.memory.address import split_effective
        for before, after in zip(trace, again):
            assert split_effective(before.effective)[1] \
                == split_effective(after.effective)[1]
            assert after.is_store
