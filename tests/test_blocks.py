"""Tests for basic-block superinstructions (repro.isa.blocks).

The golden/differential suites prove block dispatch is cycle-exact;
these tests pin the machinery itself: block formation rules, compile
caches that survive alternating latency tables, every fallback switch,
mid-block entry through ``jr``, and the telemetry counters.
"""

import pytest

from repro.config import ChipConfig
from repro.core.chip import Chip
from repro.isa.assembler import assemble
from repro.isa.blocks import block_spans, compile_blocks
from repro.isa.interpreter import Interpreter, compile_program
from repro.telemetry import ChipInstrumentation

_WINDOW = 64  # pib_entries (16) * word_bytes (4)


def _table(program, lat=None, window=_WINDOW):
    lat = lat if lat is not None else ChipConfig().latency
    return compile_blocks(program, lat, window,
                          compile_program(program, lat))


# ---------------------------------------------------------------------------
# Block formation
# ---------------------------------------------------------------------------
def test_spans_cut_at_branches_and_halt():
    program = assemble(
        "addi r3, r0, 8\n"
        "loop:\n"
        "addi r3, r3, -1\n"
        "bne r3, r0, loop\n"
        "addi r4, r0, 7\n"
        "halt\n"
    )
    # Leaders: entry, the branch target, and the branch fall-through.
    assert block_spans(program, _WINDOW) == [(0, 1), (1, 3), (3, 5)]


def test_spans_never_cross_pib_windows():
    # 20 straight-line instructions: the 64-byte window (16 slots at
    # base 0) must split them even with no branch in sight.
    program = assemble("addi r3, r3, 1\n" * 20 + "halt\n")
    spans = block_spans(program, _WINDOW)
    assert spans == [(0, 16), (16, 21)]
    for start, end in spans:
        first = program.address_of(start) // _WINDOW
        last = program.address_of(end - 1) // _WINDOW
        assert first == last, f"block {start}:{end} crosses a window"


def test_generators_stay_inside_blocks():
    # Loads and FPU ops do not end a block: the whole straight-line
    # run (here: the body of the triad loop) fuses into one entry.
    program = assemble(
        "ld r12, 0(r4)\n"
        "fadd r12, r12, r12\n"
        "sd r12, 0(r6)\n"
        "addi r4, r4, 8\n"
        "halt\n"
    )
    assert block_spans(program, _WINDOW) == [(0, 5)]
    lat = ChipConfig().latency
    table = _table(program, lat)
    assert table.n_fused == 1
    assert table.lengths == [5]
    # Non-leader slots keep their per-instruction handlers.
    handlers = compile_program(program, lat)
    assert table.entries[0] is not handlers[0]
    assert all(table.entries[i] is handlers[i] for i in range(1, 5))


def test_lone_plain_instruction_keeps_handler():
    # A single-instruction straight-line block (created here by the
    # branch target) gains nothing from fusion; its entry must be the
    # per-instruction handler itself.
    program = assemble(
        "j skip\n"
        "addi r3, r3, 1\n"
        "skip:\n"
        "halt\n"
    )
    lat = ChipConfig().latency
    handlers = compile_program(program, lat)
    table = _table(program, lat)
    assert table.entries[1] is handlers[1]


# ---------------------------------------------------------------------------
# Caches (the satellite fix: no thrash when two latency tables alternate)
# ---------------------------------------------------------------------------
def test_compile_caches_survive_alternating_latency_tables():
    program = assemble("addi r3, r0, 1\nhalt\n")
    lat_a = ChipConfig().latency
    lat_b = ChipConfig().latency
    handlers_a = compile_program(program, lat_a)
    handlers_b = compile_program(program, lat_b)
    assert handlers_a is not handlers_b
    table_a = _table(program, lat_a)
    table_b = _table(program, lat_b)
    assert table_a is not table_b
    for _ in range(3):
        assert compile_program(program, lat_a) is handlers_a
        assert compile_program(program, lat_b) is handlers_b
        assert _table(program, lat_a) is table_a
        assert _table(program, lat_b) is table_b


# ---------------------------------------------------------------------------
# Fallback switches
# ---------------------------------------------------------------------------
def test_kwarg_disables_block_dispatch():
    # sanitize=False pins a clean chip even when the suite itself runs
    # under CYCLOPS_SANITIZE=1.
    chip = Chip(sanitize=False)
    assert Interpreter(chip).block_dispatch is True
    assert Interpreter(chip, block_dispatch=False).block_dispatch is False


def test_env_disables_block_dispatch(monkeypatch):
    monkeypatch.setenv("CYCLOPS_NO_SUPERINST", "1")
    assert Interpreter(Chip(sanitize=False)).block_dispatch is False


def test_sanitizer_forces_per_instruction_dispatch():
    # The sanitizer's pc_of facade assumes state.pc moves every
    # instruction, so a sanitized chip must fall back — and still
    # produce the same cycles as block dispatch on a clean chip.
    source = (
        "addi r4, r0, 2048\n"
        "addi r3, r0, 7\n"
        "sw r3, 0(r4)\n"
        "lw r5, 0(r4)\n"
        "add r5, r5, r3\n"
        "halt\n"
    )
    sanitized = Chip(sanitize=True)
    interp = Interpreter(sanitized)
    assert interp.block_dispatch is False
    state = interp.add_thread(0, assemble(source))
    cycles = interp.run()

    reference = Interpreter(Chip(sanitize=False))
    assert reference.block_dispatch is True
    ref_state = reference.add_thread(0, assemble(source))
    assert reference.run() == cycles
    assert ref_state.regs.read(5) == state.regs.read(5) == 14


# ---------------------------------------------------------------------------
# Mid-block entry through jr
# ---------------------------------------------------------------------------
def test_jr_into_block_interior():
    # A computed jr lands on a pc that no static branch targets, i.e.
    # the *interior* of a fused block. The interior pc keeps its
    # per-instruction handler, so execution resumes there and rejoins
    # block dispatch at the next leader — with timing identical to the
    # pure per-instruction interpreter.
    source = (
        "addi r2, r0, 16\n"   # byte address of `target` below
        "jr r2\n"
        "addi r3, r3, 100\n"  # skipped; fall-through leader
        "addi r3, r3, 200\n"  # skipped
        "addi r4, r4, 1\n"    # `target`: interior of block [2..5]
        "addi r4, r4, 2\n"
        "halt\n"
    )

    def run(block_dispatch):
        chip = Chip(sanitize=False)
        interp = Interpreter(chip, model_fetch=False,
                             block_dispatch=block_dispatch)
        state = interp.add_thread(0, assemble(source))
        cycles = interp.run()
        return cycles, state.regs.read(3), state.regs.read(4)

    program = assemble(source)
    spans = block_spans(program, _WINDOW)
    assert (2, 7) in spans or any(s < 4 < e - 1 for s, e in spans), spans
    threaded, blocks = run(False), run(True)
    assert threaded == blocks
    assert blocks[1:] == (0, 3)  # skipped the r3 adds, ran the r4 adds


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------
def test_block_metrics_published():
    chip = Chip(sanitize=False)
    inst = ChipInstrumentation(chip)
    chip.telemetry = inst
    program = assemble(
        "addi r3, r0, 4\n"
        "loop:\n"
        "addi r3, r3, -1\n"
        "addi r4, r4, 1\n"
        "bne r3, r0, loop\n"
        "halt\n"
    )
    interp = Interpreter(chip, model_fetch=False)
    interp.add_thread(0, program)
    interp.run()
    snap = inst.registry.snapshot()
    # Two fused blocks: the 3-instruction loop body and the halt
    # singleton. The lone entry addi keeps its plain handler, so it
    # never counts as compiled.
    assert snap["counters"]["engine.blocks.compiled"] == 2
    # entry once, loop body four times, halt once.
    assert snap["counters"]["engine.blocks.dispatches"] == 6
    hist = snap["histograms"]["engine.blocks.length"]
    assert hist["count"] == 2

    # A fresh interpreter re-publishes its own table exactly once.
    interp2 = Interpreter(chip, model_fetch=False)
    interp2.add_thread(1, program)
    interp2.run()
    snap = inst.registry.snapshot()
    assert snap["counters"]["engine.blocks.compiled"] == 4
    assert snap["counters"]["engine.blocks.dispatches"] == 12


def test_no_metrics_without_instrumentation():
    chip = Chip(sanitize=False)
    interp = Interpreter(chip, model_fetch=False)
    interp.add_thread(0, assemble("addi r3, r0, 1\nhalt\n"))
    interp.run()  # must not raise; chip.telemetry is None
    assert interp._block_dispatched > 0
