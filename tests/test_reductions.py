"""Tests for the tree reduction primitive."""

import pytest

from repro.core.chip import Chip
from repro.errors import BarrierError
from repro.runtime.kernel import AllocationPolicy, Kernel
from repro.runtime.reductions import TreeReduction


def run_reduction(n_threads, values=None):
    kernel = Kernel(Chip(), AllocationPolicy.BALANCED)
    reduction = TreeReduction(kernel, n_threads)
    values = values or [float(i + 1) for i in range(n_threads)]
    results = []

    def body(ctx, v):
        total = yield from reduction.reduce(ctx, v)
        results.append(total)

    for v in values:
        kernel.spawn(body, v)
    kernel.run()
    return results, sum(values)


class TestTreeReduction:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 16])
    def test_every_thread_gets_the_sum(self, n):
        results, expected = run_reduction(n)
        assert len(results) == n
        assert all(r == pytest.approx(expected) for r in results)

    def test_negative_and_fractional(self):
        results, expected = run_reduction(4, [-1.5, 2.25, 0.0, 10.75])
        assert all(r == pytest.approx(expected) for r in results)

    def test_reusable(self):
        kernel = Kernel(Chip(), AllocationPolicy.BALANCED)
        reduction = TreeReduction(kernel, 4)
        sums = []

        def body(ctx, me):
            first = yield from reduction.reduce(ctx, float(me))
            second = yield from reduction.reduce(ctx, float(me * 10))
            sums.append((first, second))

        for i in range(4):
            kernel.spawn(body, i)
        kernel.run()
        assert all(s == (6.0, 60.0) for s in sums)

    def test_bad_size(self):
        kernel = Kernel(Chip())
        with pytest.raises(BarrierError):
            TreeReduction(kernel, 0)

    def test_costs_grow_with_participants(self):
        def cycles(n):
            kernel = Kernel(Chip(), AllocationPolicy.BALANCED)
            reduction = TreeReduction(kernel, n)
            finish = []

            def body(ctx, me):
                yield from reduction.reduce(ctx, 1.0)
                finish.append(ctx.time)

            for i in range(n):
                kernel.spawn(body, i)
            kernel.run()
            return max(finish)

        assert cycles(16) > cycles(2)
