"""Tests for repro.jobs: specs, cache, pool, fault tolerance, CLI."""

import json
import os
import time

import pytest

from repro.errors import JobError
from repro.jobs import (
    JobRunner,
    JobSpec,
    ResultCache,
    execute_spec,
    install_signal_handlers,
    jsonify,
    stats_document,
)
from repro.jobs.pool import CANCELLED
from repro.jobs.__main__ import main as jobs_main
from repro.telemetry.metrics import MetricsRegistry

SQUARE = "repro.jobs.testing:square"
ECHO = "repro.jobs.testing:echo"


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    """Pin the fingerprint so tests never hash the whole source tree."""
    monkeypatch.setenv("REPRO_JOBS_CODE_VERSION", "test-version")


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


# ---------------------------------------------------------------------------
# Specs and hashing
# ---------------------------------------------------------------------------
class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec(task=ECHO, payload={"a": 1, "b": [1, 2]}, seed=7)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_fingerprint_is_stable(self):
        a = JobSpec(task=SQUARE, payload={"n": 3})
        b = JobSpec(task=SQUARE, payload={"n": 3})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_tracks_payload_and_seed(self):
        base = JobSpec(task=SQUARE, payload={"n": 3})
        assert base.fingerprint() != \
            JobSpec(task=SQUARE, payload={"n": 4}).fingerprint()
        assert base.fingerprint() != \
            JobSpec(task=SQUARE, payload={"n": 3}, seed=1).fingerprint()

    def test_fingerprint_tracks_code_version(self, monkeypatch):
        spec = JobSpec(task=SQUARE, payload={"n": 3})
        before = spec.fingerprint()
        monkeypatch.setenv("REPRO_JOBS_CODE_VERSION", "other-version")
        assert spec.fingerprint() != before

    def test_fingerprint_tracks_config(self):
        from repro.config import ChipConfig
        from repro.configio import config_to_dict

        plain = JobSpec(task=ECHO)
        small = JobSpec(task=ECHO,
                        config=config_to_dict(ChipConfig.small()))
        assert plain.fingerprint() != small.fingerprint()
        assert small.chip_config().n_threads == 16

    def test_execute_resolves_by_name(self):
        value, elapsed = execute_spec(JobSpec(task=SQUARE,
                                              payload={"n": 9}))
        assert value == 81
        assert elapsed >= 0

    def test_bad_task_references(self):
        with pytest.raises(JobError):
            execute_spec(JobSpec(task="no-colon"))
        with pytest.raises(JobError):
            execute_spec(JobSpec(task="repro.jobs.testing:missing"))
        with pytest.raises(JobError):
            execute_spec(JobSpec(task="no.such.module:fn"))

    def test_jsonify_rejects_live_objects(self):
        assert jsonify({"t": (1, 2)}) == {"t": [1, 2]}
        with pytest.raises(JobError):
            jsonify({"bad": object()})

    def test_jsonify_collapses_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        out = jsonify({"f": np.float64(1.5), "i": np.int64(3),
                       "b": np.bool_(True)})
        assert out == {"f": 1.5, "i": 3, "b": True}
        assert type(out["f"]) is float and type(out["i"]) is int


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self, cache):
        spec = JobSpec(task=SQUARE, payload={"n": 5})
        assert cache.get(spec) is None
        cache.put(spec, 25, elapsed=0.5)
        entry = cache.get(spec)
        assert entry["result"] == 25
        assert entry["meta"]["elapsed_seconds"] == 0.5

    def test_spec_change_invalidates(self, cache):
        cache.put(JobSpec(task=SQUARE, payload={"n": 5}), 25, 0.0)
        assert cache.get(JobSpec(task=SQUARE, payload={"n": 6})) is None

    def test_code_version_change_invalidates(self, cache, monkeypatch):
        spec = JobSpec(task=SQUARE, payload={"n": 5})
        cache.put(spec, 25, 0.0)
        monkeypatch.setenv("REPRO_JOBS_CODE_VERSION", "new-version")
        assert cache.get(spec) is None

    def test_corrupt_entry_is_a_miss(self, cache):
        spec = JobSpec(task=SQUARE, payload={"n": 5})
        key = cache.put(spec, 25, 0.0)
        (cache.root / f"{key}.json").write_text("{not json")
        assert cache.get(spec) is None

    def test_entries_and_clear(self, cache):
        for n in range(3):
            cache.put(JobSpec(task=SQUARE, payload={"n": n}), n * n, 0.0)
        assert len(cache.entries()) == 3
        assert cache.stats()["entries"] == 3
        assert cache.clear() == 3
        assert cache.entries() == []


# ---------------------------------------------------------------------------
# Runner: inline path
# ---------------------------------------------------------------------------
class TestInlineRunner:
    def test_single_worker_runs_inline(self, monkeypatch):
        """-j 1 must not fork: executing in-process is the fallback."""
        import repro.jobs.pool as pool

        def forbid(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("inline runner spawned a process")

        monkeypatch.setattr(pool.JobRunner, "_spawn_worker", forbid)
        runner = JobRunner(n_workers=1)
        results = runner.run(
            [JobSpec(task=SQUARE, payload={"n": n}) for n in range(4)])
        assert [r.value for r in results] == [0, 1, 4, 9]

    def test_force_inline_env(self, monkeypatch):
        import repro.jobs.pool as pool

        monkeypatch.setenv(pool.FORCE_INLINE_ENV, "1")
        monkeypatch.setattr(
            pool.JobRunner, "_spawn_worker",
            lambda *a, **k: pytest.fail("forced-inline runner forked"))
        runner = JobRunner(n_workers=8)
        assert runner.run([JobSpec(task=SQUARE,
                                   payload={"n": 6})])[0].value == 36

    def test_inline_task_error_is_captured(self):
        runner = JobRunner()
        result = runner.run(
            [JobSpec(task="repro.jobs.testing:fail",
                     payload={"message": "boom"})])[0]
        assert not result.ok
        assert "boom" in result.error
        assert runner.stats["failed"] == 1

    def test_map_raises_on_failure(self):
        with pytest.raises(JobError, match="boom"):
            JobRunner().map(
                [JobSpec(task="repro.jobs.testing:fail",
                         payload={"message": "boom"})])


# ---------------------------------------------------------------------------
# Runner: pooled path
# ---------------------------------------------------------------------------
class TestPooledRunner:
    def test_results_preserve_submit_order(self):
        specs = [JobSpec(task=SQUARE, payload={"n": n}) for n in range(16)]
        results = JobRunner(n_workers=4).run(specs)
        assert [r.value for r in results] == [n * n for n in range(16)]

    def test_pooled_identical_to_inline(self):
        """Byte-for-byte determinism: the pool may not change results."""
        specs = [JobSpec(task=ECHO, payload={"n": n, "tag": f"t{n}"},
                         seed=n) for n in range(10)]
        inline = JobRunner(n_workers=1).run(specs)
        pooled = JobRunner(n_workers=4).run(specs)
        assert json.dumps([r.value for r in inline], sort_keys=True) \
            == json.dumps([r.value for r in pooled], sort_keys=True)

    def test_worker_crash_is_retried(self, tmp_path):
        marker = tmp_path / "crashed.marker"
        runner = JobRunner(n_workers=2, retries=2, backoff=0.01)
        result = runner.run(
            [JobSpec(task="repro.jobs.testing:crash_once",
                     payload={"marker": str(marker)})])[0]
        assert result.ok
        assert result.value == {"recovered": True}
        assert result.attempts == 2
        assert runner.stats["respawns"] >= 1
        assert marker.exists()

    def test_crash_injection_env(self, monkeypatch):
        import repro.jobs.pool as pool

        monkeypatch.setenv(pool.CRASH_ENV, "0")
        runner = JobRunner(n_workers=2, retries=2, backoff=0.01)
        results = runner.run(
            [JobSpec(task=SQUARE, payload={"n": n}) for n in range(3)])
        assert [r.value for r in results] == [0, 1, 4]
        assert runner.stats["respawns"] >= 1

    def test_exhausted_retries_fail_with_crash_reason(self, tmp_path):
        # retries=0: the single crashing attempt must surface as the
        # job's error rather than hang or kill the batch.
        runner = JobRunner(n_workers=2, retries=0)
        result = runner.run(
            [JobSpec(task="repro.jobs.testing:crash_once",
                     payload={"marker": str(tmp_path / "m.marker")})])[0]
        assert not result.ok
        assert "worker crashed" in result.error
        assert runner.stats["failed"] == 1

    def test_per_job_timeout(self):
        runner = JobRunner(n_workers=2, timeout=0.4, retries=0)
        started = time.monotonic()
        result = runner.run(
            [JobSpec(task="repro.jobs.testing:sleep",
                     payload={"seconds": 60})])[0]
        assert time.monotonic() - started < 20
        assert not result.ok
        assert "timed out after 0.4s" in result.error
        assert runner.stats["timeouts"] == 1

    def test_task_error_retries_then_fails(self):
        runner = JobRunner(n_workers=2, retries=1, backoff=0.01)
        result = runner.run(
            [JobSpec(task="repro.jobs.testing:fail",
                     payload={"message": "always"})])[0]
        assert not result.ok
        assert result.attempts == 2
        assert runner.stats["retries"] == 1


# ---------------------------------------------------------------------------
# Runner: caching
# ---------------------------------------------------------------------------
class TestCachedRunner:
    def test_cold_then_warm(self, cache):
        specs = [JobSpec(task=SQUARE, payload={"n": n}) for n in range(5)]
        cold = JobRunner(n_workers=2, cache=cache)
        assert [r.cached for r in cold.run(specs)] == [False] * 5
        warm = JobRunner(n_workers=2, cache=cache)
        results = warm.run(specs)
        assert [r.cached for r in results] == [True] * 5
        assert [r.value for r in results] == [n * n for n in range(5)]
        assert warm.stats["cache_hits"] == 5
        assert warm.stats["completed"] == 0  # nothing simulated

    def test_spec_change_misses(self, cache):
        runner = JobRunner(cache=cache)
        runner.run([JobSpec(task=SQUARE, payload={"n": 2})])
        results = runner.run([JobSpec(task=SQUARE, payload={"n": 3})])
        assert results[0].cached is False
        assert results[0].value == 9

    def test_failures_are_not_cached(self, cache):
        runner = JobRunner(cache=cache)
        spec = JobSpec(task="repro.jobs.testing:fail",
                       payload={"message": "no"})
        assert not runner.run([spec])[0].ok
        assert cache.get(spec) is None

    def test_metrics_flow_into_registry(self, cache):
        metrics = MetricsRegistry()
        runner = JobRunner(cache=cache, metrics=metrics)
        specs = [JobSpec(task=SQUARE, payload={"n": n}) for n in range(3)]
        runner.run(specs)
        runner.run(specs)
        snap = metrics.snapshot()
        assert snap["counters"]['jobs.submitted'] == 6
        assert snap["counters"]['jobs.cache{outcome="hit"}'] == 3
        assert snap["counters"]['jobs.cache{outcome="miss"}'] == 3
        assert snap["counters"]['jobs.completed{status="ok"}'] == 3
        assert snap["histograms"]['jobs.elapsed_seconds{task="square"}'][
            "count"] == 3

    def test_events_observed(self, cache):
        events = []
        runner = JobRunner(cache=cache, on_event=events.append)
        spec = JobSpec(task=SQUARE, payload={"n": 4})
        runner.run([spec])
        runner.run([spec])
        kinds = [e.kind for e in events]
        assert kinds == ["submitted", "start", "done", "submitted", "hit"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestJobsCli:
    def test_submit_inline(self, tmp_path, capsys):
        code = jobs_main([
            "submit", SQUARE, "--payload", '{"n": 12}',
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"] == 144
        assert doc["ok"] is True and doc["cached"] is False

        code = jobs_main([
            "submit", SQUARE, "--payload", '{"n": 12}',
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["cached"] is True

    def test_submit_bad_payload(self, capsys):
        assert jobs_main(["submit", SQUARE, "--payload", "nope"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_submit_failure_exit_code(self, tmp_path, capsys):
        code = jobs_main([
            "submit", "repro.jobs.testing:fail",
            "--payload", '{"message": "cli boom"}',
            "--no-cache",
        ])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False and "cli boom" in doc["error"]

    def test_status_and_cache_commands(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        jobs_main(["submit", SQUARE, "--payload", '{"n": 2}',
                   "--cache-dir", cache_dir])
        capsys.readouterr()
        assert jobs_main(["status", "--cache-dir", cache_dir]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["cache"]["entries"] == 1
        assert status["last_run"]["submitted"] == 1

        assert jobs_main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        assert "square" in capsys.readouterr().out
        assert jobs_main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert jobs_main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_json_stats(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        jobs_main(["submit", SQUARE, "--payload", '{"n": 3}',
                   "--cache-dir", cache_dir])
        jobs_main(["submit", SQUARE, "--payload", '{"n": 3}',
                   "--cache-dir", cache_dir])
        capsys.readouterr()
        assert jobs_main(["cache", "--json", "--cache-dir", cache_dir]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) >= {"directory", "entries", "bytes",
                                 "hits", "misses"}
        assert document["entries"] == 1
        assert document["bytes"] > 0
        # last_run.state reflects the warm second submission.
        assert document["hits"] == 1
        assert document["misses"] == 0

    def test_stats_document_matches_cli(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        runner = JobRunner(n_workers=1, cache=cache)
        spec = JobSpec(task=SQUARE, payload={"n": 4})
        runner.run([spec])
        runner.run([spec])
        document = stats_document(cache)
        assert document["entries"] == 1
        assert document["hits"] == 1


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------
class TestGracefulShutdown:
    def test_inline_stop_cancels_remaining_jobs(self):
        runner = JobRunner(n_workers=1)
        specs = [JobSpec(task=SQUARE, payload={"n": n}) for n in range(6)]

        def stop_after_two(event):
            if event.kind == "done" and event.index == 1:
                runner.request_stop()

        runner.on_event = stop_after_two
        results = runner.run(specs)
        assert [r.ok for r in results[:2]] == [True, True]
        assert all(not r.ok and r.error == CANCELLED for r in results[2:])
        assert runner.stats["cancelled"] == 4
        assert runner.stopping

    def test_pooled_stop_drains_without_orphans(self):
        import multiprocessing

        runner = JobRunner(n_workers=2)
        specs = [JobSpec(task="repro.jobs.testing:sleep",
                         payload={"seconds": 0.05, "which": n})
                 for n in range(8)]

        def stop_on_first_done(event):
            if event.kind == "done":
                runner.request_stop()

        runner.on_event = stop_on_first_done
        results = runner.run(specs)
        done = [r for r in results if r.ok]
        cancelled = [r for r in results if not r.ok]
        assert done, "at least the triggering job completed"
        assert cancelled, "undispatched jobs were cancelled"
        assert all(r.error == CANCELLED for r in cancelled)
        assert runner.stats["cancelled"] == len(cancelled)
        assert multiprocessing.active_children() == []

    def test_stopped_runner_cancels_everything_up_front(self):
        runner = JobRunner(n_workers=2)
        runner.request_stop()
        results = runner.run([JobSpec(task=SQUARE, payload={"n": 3})])
        assert not results[0].ok and results[0].error == CANCELLED

    def test_force_stop_kills_in_flight_jobs(self):
        import multiprocessing
        import threading

        runner = JobRunner(n_workers=2)
        specs = [JobSpec(task="repro.jobs.testing:sleep",
                         payload={"seconds": 60, "which": n})
                 for n in range(2)]

        def stop_on_start(event):
            if event.kind == "start" and event.index == 0:
                threading.Thread(
                    target=lambda: runner.request_stop(force=True)).start()

        runner.on_event = stop_on_start
        started = time.time()
        results = runner.run(specs)
        assert time.time() - started < 30, "force stop did not kill sleeps"
        assert all(not r.ok for r in results)
        assert multiprocessing.active_children() == []

    def test_signal_handlers_request_stop_then_escalate(self):
        import signal

        runner = JobRunner(n_workers=1)
        restore = install_signal_handlers(runner, signals=(signal.SIGTERM,))
        try:
            assert not runner.stopping
            signal.raise_signal(signal.SIGTERM)
            assert runner.stopping and not runner._stop_force
            signal.raise_signal(signal.SIGTERM)
            assert runner._stop_force
        finally:
            restore()
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL


# ---------------------------------------------------------------------------
# Integration with a real simulation point
# ---------------------------------------------------------------------------
class TestSimulationIntegration:
    def test_fig3_point_pooled_equals_direct(self, cache):
        """A real simulation through the pool is byte-identical and
        cache-served on the second run."""
        from repro.experiments.fig3_splash_speedups import (
            POINT_TASK,
            simulate_point,
        )

        spec = JobSpec(task=POINT_TASK, payload={
            "kernel": "LU", "n_threads": 2, "quick": True,
        })
        direct = simulate_point("LU", 2, True)
        runner = JobRunner(n_workers=2, cache=cache)
        first = runner.run([spec])[0]
        assert first.ok and not first.cached
        assert first.value == {"cycles": int(direct)}
        second = runner.run([spec])[0]
        assert second.cached and second.value == first.value
