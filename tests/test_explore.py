"""Tests for the sweep-able chip generator (repro.explore).

The load-bearing test is the differential one: the default ChipSpec
must derive a configuration equal field-for-field to the paper's, and
the chip it builds must behave byte-identically to ``Chip()`` on a
real workload. Everything else — validation, serialization, sweeps,
and the three exploration experiment families — hangs off that anchor.
"""

import dataclasses

import pytest

from repro import configio
from repro.config import ChipConfig, LatencyTable
from repro.core.chip import Chip
from repro.errors import ExploreError
from repro.explore import (
    BANK_KB,
    MAX_BANKS,
    MEM_SWITCH_LATENCY,
    ChipSpec,
    sweep,
)
from repro.workloads.stream import StreamParams, run_stream


class TestDifferential:
    """ChipSpec defaults must reproduce today's chip exactly."""

    def test_default_config_equals_paper(self):
        assert ChipSpec().to_config() == ChipConfig.paper()
        assert ChipSpec.paper().to_config() == ChipConfig.paper()

    def test_default_latency_table_is_published_table2(self):
        assert ChipSpec().latency_table() == LatencyTable()

    def test_default_build_matches_stock_chip_on_stream(self):
        params = StreamParams(kernel="triad", n_elements=512, n_threads=8)
        baseline = run_stream(params, chip=Chip())
        explored = run_stream(params, chip=ChipSpec().build())
        assert explored.cycles == baseline.cycles
        assert explored.bandwidth_gb_s == baseline.bandwidth_gb_s
        assert explored.memory_traffic_bytes == baseline.memory_traffic_bytes
        assert explored.verified and baseline.verified


class TestDerivation:
    def test_thread_and_memory_totals(self):
        spec = ChipSpec(tus_per_quad=2, n_quads=8, n_banks=4)
        assert spec.n_threads == 16
        assert spec.memory_kb == 4 * BANK_KB

    def test_small_chip_builds_and_runs(self):
        chip = ChipSpec.small().build()
        assert chip.config.n_threads == 16
        result = run_stream(
            StreamParams(kernel="copy", n_elements=256, n_threads=4),
            chip=chip)
        assert result.verified

    def test_switch_latency_moves_only_miss_rows(self):
        table = ChipSpec(mem_switch_latency=12).latency_table()
        base = LatencyTable()
        assert table.mem_local_miss == (1, base.mem_local_miss[1] + 6)
        assert table.mem_remote_miss == (1, base.mem_remote_miss[1] + 6)
        assert table.mem_local_hit == base.mem_local_hit
        assert table.mem_remote_hit == base.mem_remote_hit

    def test_table2_implies_default_switch_latency(self):
        # 6-cycle local hit + two 9-cycle crossings = the published 24.
        base = LatencyTable()
        assert base.mem_local_miss[1] == (
            base.mem_local_hit[1] + 2 * MEM_SWITCH_LATENCY)

    def test_cache_geometry_rederives_partition(self):
        config = ChipSpec(dcache_kb=8, dcache_ways=4).to_config()
        line = config.dcache_line_bytes
        sets = config.dcache_bytes // (line * config.dcache_ways)
        assert config.dcache_partition_bytes == sets * line
        Chip(config)  # must pass ChipConfig's own validation

    def test_odd_quad_count_drops_icache_pairing(self):
        assert ChipSpec(n_quads=3).to_config().quads_per_icache == 1

    def test_describe_is_compact(self):
        assert ChipSpec().describe() == "4t x 32q, 16KB/8w, 16 banks, s=9"


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"tus_per_quad": 0},
        {"n_quads": 0},
        {"dcache_kb": 0},
        {"dcache_ways": 0},
        {"n_banks": 0},
        {"n_banks": 3},                 # not a power of two
        {"n_banks": 2 * MAX_BANKS},     # exceeds 24-bit physical space
        {"dcache_kb": 3, "dcache_ways": 8},   # does not divide into ways
        {"dcache_kb": 12, "dcache_ways": 8},  # 24 sets: not a power of two
        {"mem_switch_latency": -1},
    ])
    def test_bad_geometry_raises(self, kwargs):
        with pytest.raises(ExploreError):
            ChipSpec(**kwargs)

    def test_specs_are_frozen_and_hashable(self):
        spec = ChipSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.n_banks = 8
        assert len({ChipSpec(), ChipSpec.paper(), ChipSpec.small()}) == 2


class TestSerialization:
    def test_dict_round_trip(self):
        spec = ChipSpec(tus_per_quad=2, n_quads=6, n_banks=8,
                        mem_switch_latency=4)
        assert ChipSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ExploreError, match="unknown chip-spec keys"):
            ChipSpec.from_dict({"n_banks": 8, "turbo": 1})

    def test_from_dict_rejects_non_integers(self):
        with pytest.raises(ExploreError, match="non-integer"):
            ChipSpec.from_dict({"n_banks": "eight"})

    def test_from_dict_revalidates(self):
        with pytest.raises(ExploreError):
            ChipSpec.from_dict({"n_banks": 5})

    def test_configio_json_round_trip(self):
        spec = ChipSpec(n_quads=8, dcache_kb=8)
        text = configio.spec_to_json(spec)
        assert configio.spec_from_json(text) == spec

    def test_configio_rejects_bad_json(self):
        with pytest.raises(ExploreError):
            configio.spec_from_json("{not json")
        with pytest.raises(ExploreError):
            configio.spec_from_json("[1, 2]")

    def test_configio_file_round_trip(self, tmp_path):
        spec = ChipSpec(n_banks=2, mem_switch_latency=20)
        path = tmp_path / "spec.json"
        configio.save_spec(spec, str(path))
        assert configio.load_spec(str(path)) == spec


class TestSweep:
    def test_grid_is_cartesian_and_deterministic(self):
        specs = sweep(n_banks=[4, 8, 16], tus_per_quad=[2, 4])
        assert len(specs) == 6
        # Sorted-key order: n_banks is the outer axis.
        assert [s.n_banks for s in specs] == [4, 4, 8, 8, 16, 16]
        assert [s.tus_per_quad for s in specs] == [2, 4] * 3
        assert specs == sweep(tus_per_quad=[2, 4], n_banks=[4, 8, 16])

    def test_unknown_axis_raises(self):
        with pytest.raises(ExploreError, match="unknown sweep axes"):
            sweep(banks=[4, 8])

    def test_invalid_grid_point_raises(self):
        with pytest.raises(ExploreError):
            sweep(n_banks=[4, 6])

    def test_unswept_knobs_stay_at_paper_defaults(self):
        (spec,) = sweep(n_quads=[8])
        assert spec == ChipSpec(n_quads=8)


class TestFamilies:
    """The three exploration experiment drivers in quick mode."""

    def test_saturation_quick(self):
        from repro.experiments import get_experiment

        report = get_experiment("saturation")(quick=True)
        assert report.series[0].y[-1] > report.series[0].y[0]  # it ramps
        assert report.measurements["saturated_bank_utilization"] > 0.8
        assert report.measurements["per_thread_dilution"] > 1.0
        assert len(report.tables) == 1

    def test_bandwidth_quick(self):
        from repro.experiments import get_experiment

        report = get_experiment("bandwidth")(quick=True)
        assert {s.label for s in report.series} == {"scrambled", "local"}
        assert report.measurements["local_scaling_x"] > 1.0
        assert report.measurements["local_over_scrambled_at_max_banks"] > 1.0

    def test_contention_quick(self):
        from repro.experiments import get_experiment

        report = get_experiment("contention")(quick=True)
        assert report.measurements["slowdown_in_cache"] < \
            report.measurements["slowdown_worst"]
        assert report.measurements["slowdown_worst"] > 1.05
        assert report.measurements["hit_rate_gap_at_capacity"] > 0.0

    def test_families_are_pool_deterministic(self):
        """Fanning a family through a 2-worker pool changes nothing."""
        from repro.experiments import get_experiment
        from repro.jobs.pool import JobRunner

        driver = get_experiment("contention")
        inline = driver(quick=True).to_dict()
        pooled = driver(quick=True, runner=JobRunner(n_workers=2)).to_dict()
        inline.pop("elapsed_s", None)
        pooled.pop("elapsed_s", None)
        assert inline == pooled

    def test_custom_spec_threads_through_payloads(self):
        """Family points carry the chip spec for shape-keyed caching."""
        from repro.experiments import saturation

        spec = ChipSpec.small(n_quads=8, n_banks=2)
        jobs = saturation._point_specs(spec, [1, 4], 100)
        assert all(job.payload["spec"] == spec.to_dict() for job in jobs)
        assert [job.payload["threads"] for job in jobs] == [1, 4]
