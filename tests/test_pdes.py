"""Tests for repro.pdes: partitioning, exactness, crashes, sharding.

The load-bearing assertions are the differential ones: a partitioned
run must leave behind *byte-identical* state — final time, memory
images, per-thread counters, link traffic — to the serial engine, or
the subsystem has no business existing (see docs/parallel-sim.md).
"""

import os

import pytest

from repro.config import ChipConfig
from repro.errors import PdesError
from repro.jobs import JobRunner
from repro.pdes import CellProgram, PartitionMap
from repro.pdes.domain import (CRASH_ENV, LEGACY_CRASH_ENV,
                               crash_injection_target)
from repro.pdes.quadsplit import run_stream_sharded, split_config
from repro.system.halo import HaloParams, run_halo
from repro.system.multichip import _Mailbox, _Message
from repro.system.topology import Topology
from repro.workloads.stream import StreamParams

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _small_config() -> ChipConfig:
    from dataclasses import replace

    return replace(ChipConfig.small(), bank_bytes=64 * 1024)


# ---------------------------------------------------------------------------
# Mailbox determinism
# ---------------------------------------------------------------------------
class TestMailboxOrder:
    def _message(self, arrival, send_time, src_index, seq) -> _Message:
        return _Message(arrival, send_time, src_index, seq,
                        src=(src_index, 0, 0), payload=b"x")

    def test_drain_order_ignores_post_interleaving(self):
        """The transport may land messages in any host-side order; the
        drain order is (arrival, send time, sender, sequence) always."""
        a = self._message(20, 5, 1, 0)
        b = self._message(10, 9, 0, 0)
        c = self._message(10, 2, 3, 0)
        d = self._message(10, 2, 2, 0)
        for posting in ([a, b, c, d], [d, c, b, a], [b, d, a, c]):
            box = _Mailbox()
            for message in posting:
                box.post(message)
            assert box.drain_order() == [d, c, b, a]

    def test_select_takes_the_smallest_deliverable_key(self):
        box = _Mailbox()
        late = self._message(50, 1, 0, 0)
        early = self._message(10, 8, 1, 0)
        box.post(late)
        box.post(early)
        # Only `early` has arrived by t=20.
        assert box.select(20, None) is early
        # At t=60 both are deliverable; arrival order wins.
        assert box.select(60, None) is early
        # A sender filter restricts the candidates.
        assert box.select(60, 0) is late
        assert box.select(60, 7) is None

    def test_same_channel_messages_drain_in_send_order(self):
        box = _Mailbox()
        first = self._message(30, 4, 0, 0)
        second = self._message(30, 4, 0, 1)
        box.post(second)
        box.post(first)
        assert box.drain_order() == [first, second]


# ---------------------------------------------------------------------------
# Partition map
# ---------------------------------------------------------------------------
class TestPartition:
    def test_balanced_contiguous_slabs(self):
        partition = PartitionMap(Topology(4, 2, 1), 2, lookahead=11)
        assert [partition.domain_of((x, y, 0)) for y in (0, 1)
                for x in range(4)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert partition.lookahead == 11

    def test_rejects_impossible_partitions(self):
        with pytest.raises(PdesError):
            PartitionMap(Topology(2, 1, 1), 3, lookahead=11)
        with pytest.raises(PdesError):
            PartitionMap(Topology(2, 1, 1), 1, lookahead=11)
        with pytest.raises(PdesError):
            PartitionMap(Topology(2, 1, 1), 2, lookahead=0)

    def test_channels_follow_link_adjacency(self):
        partition = PartitionMap(Topology(2, 2, 1), 2, lookahead=11)
        assert partition.in_channels(0) == [1]
        assert partition.out_channels(0) == [1]

    def test_cross_domain_route_ownership(self):
        partition = PartitionMap(Topology(2, 2, 1), 2, lookahead=11)
        # (0,0)->(0,1) uses only the sender's +y link: fine.
        partition.check_route((0, 0, 0), (0, 1, 0))
        # (0,0)->(1,1) would hop through (1,0)'s +y link under x-major
        # dimension-ordered routing — still domain 0's, so fine too.
        partition.check_route((0, 0, 0), (1, 1, 0))
        # (0,1)->(1,0): x-first leaves via (0,1)'s +x link then drops
        # through (1,1)'s -y link; both domain 1's. Reverse of a route
        # that crosses early would raise.
        partition.check_route((0, 1, 0), (1, 0, 0))


# ---------------------------------------------------------------------------
# Differential: parallel must equal serial, byte for byte
# ---------------------------------------------------------------------------
class TestDifferential:
    def _compare(self, serial, parallel) -> None:
        assert parallel.system.pdes_fallback_reason is None
        assert parallel.system.pdes_stats is not None
        assert parallel.cycles == serial.cycles
        assert parallel.verified and serial.verified
        assert parallel.link_bytes == serial.link_bytes
        s_sys, p_sys = serial.system, parallel.system
        assert p_sys.scheduler.now == s_sys.scheduler.now
        assert p_sys.blackboard == s_sys.blackboard
        for s_chip, p_chip in zip(s_sys.chips, p_sys.chips):
            size = s_chip.memory.backing.size
            assert p_chip.memory.backing.read_block(0, size) == \
                s_chip.memory.backing.read_block(0, size)
            for s_tu, p_tu in zip(s_chip.threads, p_chip.threads):
                assert vars(p_tu.counters) == vars(s_tu.counters)
                assert p_tu.issue_time == s_tu.issue_time

    def test_2x2_halo_exchange_byte_identical(self):
        params = HaloParams(n_chips=4, band_elements=48, iterations=3,
                            threads_per_chip=2, mesh_ny=2)
        config = _small_config()
        serial = run_halo(params, config)
        parallel = run_halo(params, config, domains=2)
        self._compare(serial, parallel)
        stats = parallel.system.pdes_stats
        assert stats["domains"] == 2
        assert stats["messages"] > 0

    def test_quad_sharded_stream_pooled_equals_inline(self):
        params = StreamParams(kernel="triad", n_elements=256, n_threads=8,
                              independent=True, verify=True)
        config = ChipConfig.small()
        inline = run_stream_sharded(params, config, shards=2)
        pooled = run_stream_sharded(params, config, shards=2,
                                    runner=JobRunner(n_workers=2))
        assert inline.shard_values == pooled.shard_values
        assert pooled.cycles == inline.cycles
        assert pooled.verified


# ---------------------------------------------------------------------------
# Fallbacks and crash recovery
# ---------------------------------------------------------------------------
class TestFallback:
    def test_serial_fallback_when_partition_impossible(self):
        params = HaloParams(n_chips=2, band_elements=32, iterations=1,
                            threads_per_chip=2)
        result = run_halo(params, _small_config(), domains=7)
        assert result.verified
        reason = result.system.pdes_fallback_reason
        assert reason is not None and "7" in reason

    def test_closure_built_system_falls_back_with_reason(self):
        from repro.system.multichip import MultiChipSystem
        from repro.system.topology import Topology as T

        system = MultiChipSystem(T(2, 1, 1), _small_config())
        system.run(domains=2)
        assert "CellProgram" in system.pdes_fallback_reason

    def test_crash_env_spelling(self, monkeypatch):
        """CYCLOPS_PDES_INJECT_CRASH is canonical; the pre-rename
        REPRO_ spelling still works but warns."""
        monkeypatch.delenv(CRASH_ENV, raising=False)
        monkeypatch.delenv(LEGACY_CRASH_ENV, raising=False)
        assert crash_injection_target() is None

        monkeypatch.setenv(CRASH_ENV, "3")
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # new spelling: no warning
            assert crash_injection_target() == "3"

        monkeypatch.delenv(CRASH_ENV)
        monkeypatch.setenv(LEGACY_CRASH_ENV, "2")
        with pytest.deprecated_call():
            assert crash_injection_target() == "2"

        monkeypatch.setenv(CRASH_ENV, "3")  # new spelling wins
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert crash_injection_target() == "3"

    @pytest.mark.parametrize("env_name", [CRASH_ENV, LEGACY_CRASH_ENV])
    def test_killed_domain_degrades_to_serial_with_clear_error(
            self, monkeypatch, env_name):
        """A domain that dies mid-protocol is retried once, then the
        run degrades to the serial engine — correct results, recorded
        reason. Both env spellings must reach the injection point."""
        monkeypatch.delenv(CRASH_ENV, raising=False)
        monkeypatch.setenv(env_name, "1")
        params = HaloParams(n_chips=2, band_elements=32, iterations=2,
                            threads_per_chip=2)
        result = run_halo(params, _small_config(), domains=2)
        assert result.verified  # the serial fallback still ran it
        reason = result.system.pdes_fallback_reason
        assert "2 failed attempt(s)" in reason
        assert "exit code" in reason

    def test_crash_env_cleared_recovers_on_retry(self, monkeypatch):
        """The retry machinery itself: first attempt crashes, and with
        the injection gone the second attempt must succeed in parallel.
        """
        params = HaloParams(n_chips=2, band_elements=32, iterations=2,
                            threads_per_chip=2)
        config = _small_config()
        serial = run_halo(params, config)

        import repro.pdes as pdes

        real_coordinator = pdes.Coordinator
        attempts = []

        class FlakyCoordinator(real_coordinator):
            def run(self):
                attempts.append(1)
                if len(attempts) == 1:
                    os.environ[CRASH_ENV] = "0"
                else:
                    os.environ.pop(CRASH_ENV, None)
                try:
                    return super().run()
                finally:
                    os.environ.pop(CRASH_ENV, None)

        monkeypatch.setattr(pdes, "Coordinator", FlakyCoordinator)
        parallel = run_halo(params, config, domains=2)
        assert len(attempts) == 2
        assert parallel.system.pdes_fallback_reason is None
        assert parallel.system.pdes_stats["retries"] == 1
        assert parallel.cycles == serial.cycles

    def test_quad_shard_worker_crash_respawns(self, monkeypatch):
        """The jobs pool's fault tolerance carries over to quad shards:
        a worker killed on first dispatch respawns and the shard
        retries to an identical result."""
        monkeypatch.setenv("REPRO_JOBS_INJECT_CRASH", "0")
        params = StreamParams(kernel="copy", n_elements=128, n_threads=4,
                              independent=True, verify=True)
        config = ChipConfig.small()
        runner = JobRunner(n_workers=2, retries=2)
        pooled = run_stream_sharded(params, config, shards=2,
                                    runner=runner)
        monkeypatch.delenv("REPRO_JOBS_INJECT_CRASH")
        inline = run_stream_sharded(params, config, shards=2)
        assert runner.stats["respawns"] >= 1
        assert pooled.shard_values == inline.shard_values


# ---------------------------------------------------------------------------
# Program-as-data and config sharding
# ---------------------------------------------------------------------------
class TestProgramAndSplit:
    def test_cell_program_roundtrip(self):
        program = CellProgram(nx=4, ny=2, torus=True,
                              setup="repro.system.halo:halo_setup",
                              payload={"n_chips": 8})
        again = CellProgram.from_dict(program.to_dict())
        assert again == program

    def test_split_config_divides_threads_and_banks(self):
        config = ChipConfig.small()
        sub = split_config(config, 2)
        assert sub.n_threads == config.n_threads // 2
        assert sub.n_memory_banks == config.n_memory_banks // 2
        assert sub.reserved_threads == 0

    def test_split_config_rejects_ragged_shards(self):
        with pytest.raises(PdesError):
            split_config(ChipConfig.small(), 3)

    def test_sharding_requires_independent_mode(self):
        params = StreamParams(kernel="triad", n_elements=64, n_threads=4,
                              independent=False)
        with pytest.raises(PdesError):
            run_stream_sharded(params, ChipConfig.small(), shards=2)
