#!/usr/bin/env python3
"""Programming Cyclops at the ISA level: assembly SAXPY on four threads.

Writes a SAXPY kernel (y[i] += a * x[i]) in Cyclops assembly, assembles
it, encodes it to machine words and back (round-trip), then runs four
hardware threads of it — one quad — through the timed interpreter,
including PIB/I-cache fetch modeling. Each thread processes a strided
slice, and the shared-FPU contention between quad-mates is visible in
the cycle counts.

Run:  python examples/assembly_kernel.py
"""

from repro import Chip
from repro.isa import Interpreter, Program, assemble

N = 64  # doubles per thread

SAXPY = """
    # r4 = &x[i], r5 = &y[i], r6 = remaining count, d10 = a
    tid   r7              # stagger start addresses by thread id
loop:
    ld    r12, 0(r4)      # d12 = x[i]
    ld    r14, 0(r5)      # d14 = y[i]
    fmadd r14, r10, r12   # d14 += a * x[i]
    sd    r14, 0(r5)
    addi  r4, r4, 32      # four threads stride together
    addi  r5, r5, 32
    addi  r6, r6, -1
    bne   r6, r0, loop
    halt
"""


def main() -> None:
    program = assemble(SAXPY)
    words = program.encode()
    print(f"assembled {len(program)} instructions "
          f"({len(words) * 4} bytes of code)")
    print(program.listing())

    # Machine-word round trip, as a loader would see it.
    reloaded = Program.from_words(words)
    assert [i.render() for i in reloaded.instructions] == \
        [i.render() for i in program.instructions]

    chip = Chip()
    x_base, y_base = 0x10000, 0x20000
    total = 4 * N
    chip.memory.backing.f64_view(x_base, total)[:] = 2.0
    chip.memory.backing.f64_view(y_base, total)[:] = 1.0

    interp = Interpreter(chip)
    for tid in range(4):  # one quad
        interp.add_thread(
            tid, program,
            init_regs={4: x_base + 8 * tid, 5: y_base + 8 * tid, 6: N},
            init_doubles={10: 3.0},
        )
    cycles = interp.run()

    y = chip.memory.backing.f64_view(y_base, total)
    assert (y == 1.0 + 3.0 * 2.0).all()
    print(f"\nSAXPY of {total} doubles verified; {cycles} cycles")
    for tid in range(4):
        c = chip.thread(tid).counters
        print(f"  thread {tid}: {c.instructions} instructions, "
              f"{c.run_cycles} run / {c.stall_cycles} stall "
              f"(shared-FPU and cache-port contention)")
    icache = chip.icache_of(0)
    print(f"  I-cache hit rate: {icache.hit_rate():.2%} "
          f"({icache.misses} misses)")


if __name__ == "__main__":
    main()
