#!/usr/bin/env python3
"""Cellular computing: a chain of Cyclops chips running a halo exchange.

The paper's premise is that "large systems with thousands of chips can
be built by replicating this basic cell in a regular pattern". This
example builds a 1-D chain of full Cyclops cells connected by their
16-bit 500 MHz links, gives each cell a band of a global grid, and runs
a Jacobi stencil with boundary exchange over the links — weak scaling:
per-cell work stays constant as the system grows.

Run:  python examples/multichip_halo.py [--chips N]
"""

import argparse

from repro.system.halo import HaloParams, run_halo


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chips", type=int, default=4)
    parser.add_argument("--band", type=int, default=256)
    parser.add_argument("--iterations", type=int, default=3)
    args = parser.parse_args()

    print(f"{'cells':>6} {'cycles':>8} {'link bytes':>10} "
          f"{'weak-scaling eff.':>18}")
    baseline = None
    for n_chips in range(1, args.chips + 1):
        result = run_halo(HaloParams(
            n_chips=n_chips, band_elements=args.band,
            iterations=args.iterations, threads_per_chip=8,
        ))
        baseline = baseline or result.cycles
        efficiency = baseline / result.cycles
        print(f"{n_chips:>6} {result.cycles:>8} {result.link_bytes:>10} "
              f"{efficiency:>17.0%}  verified={result.verified}")

    print("\nEach cell is a full 128-thread Cyclops chip; boundary "
          "elements travel over the 2 B/cycle inter-chip links "
          "(12 GB/s peak I/O per chip).")


if __name__ == "__main__":
    main()
