#!/usr/bin/env python3
"""A Table-1 placement study with the trace explorer.

Answers "where should this data live?" empirically: the same access
pattern is replayed under every interest-group level and the measured
latency/locality profile printed — no workload code needed. Also shows
a pointer-chase (latency-bound) pattern, where spreading data across
caches hurts even more than for streams.

Run:  python examples/placement_study.py
"""

from repro.analysis.tables import format_table
from repro.memory.interest_groups import InterestGroup, Level
from repro.memory.tracesim import (
    pointer_chase_trace,
    replay,
    retarget,
    strided_trace,
)


def study(name: str, trace) -> None:
    print(f"\n{name}:")
    rows = []
    for level, index in ((Level.OWN, 0), (Level.ONE, 0), (Level.ONE, 20),
                         (Level.FOUR, 0), (Level.ALL, 0)):
        group = InterestGroup(level, index)
        profile = replay(retarget(trace, group))
        label = f"{level.name}" + (f"[{index}]" if level is Level.ONE else "")
        rows.append([
            label,
            f"{profile.hit_rate:.0%}",
            f"{100 * profile.local / profile.accesses:.0f}%",
            f"{profile.mean_load_latency:.1f}",
            profile.memory_traffic_bytes,
        ])
    print(format_table(
        ["interest group", "hit rate", "local", "cycles/access",
         "memory bytes"],
        rows,
    ))


def main() -> None:
    print("Replaying one access pattern under each placement level")
    print("(requester is a thread in quad 0; cache 0 is its local one).")

    study("Sequential stream, 4 KB (STREAM-like)",
          strided_trace(base=0, stride=8, count=512, quad=0))

    # A pseudo-random pointer chase across 64 KB.
    addresses = [(i * 2654435761) % (64 * 1024) & ~7 for i in range(512)]
    study("Pointer chase over 64 KB (linked-list-like)",
          pointer_chase_trace(addresses, quad=0))

    print("\nReading the tables: OWN/ONE[0] keep everything local "
          "(7-cycle hits); a pinned remote cache (ONE[20]) pays 18; the "
          "default ALL spreads lines over 32 caches, so ~31/32 of "
          "accesses are remote — the cost the paper's local-cache STREAM "
          "optimization removes.")


if __name__ == "__main__":
    main()
