#!/usr/bin/env python3
"""The paper's three target application classes on one chip.

"Our architecture targets problems that ... should be able to exploit
massive amounts of parallelism ... and they should be compute
intensive. Examples of applications that match these requirements are
molecular dynamics, raytracing, and linear algebra." (Section 5)

This example runs all three — a Lennard-Jones MD step, a small Whitted
raytrace, and a scratchpad-staged DGEMM — at several thread counts and
prints their scaling, plus the architectural effect each one surfaces:
MD and DGEMM ride the shared FMA pipes, the raytracer's divide/sqrt
serialize on the non-pipelined unit, and DGEMM shows the partitioned
fast memory beating plain caching.

Run:  python examples/target_applications.py
"""

from repro.workloads.dgemm import DgemmParams, run_dgemm
from repro.workloads.md import MDParams, run_md
from repro.workloads.raytrace import RayTraceParams, run_raytrace


def sweep(name, runner, counts=(1, 4, 16, 32)):
    base = None
    print(f"\n{name}")
    for p in counts:
        result = runner(p)
        base = base or result.cycles
        print(f"  {p:3d} threads: {result.cycles:8d} cycles  "
              f"speedup {base / result.cycles:5.1f}  "
              f"verified={result.verified}")


def main() -> None:
    sweep("Molecular dynamics (LJ, 256 particles, cell lists)",
          lambda p: run_md(MDParams(n_particles=256, n_threads=p)))
    sweep("Raytracing (32x24, 3 spheres + shadows)",
          lambda p: run_raytrace(RayTraceParams(width=32, height=24,
                                                n_threads=p)))
    sweep("DGEMM 32x32 (scratchpad-staged tiles)",
          lambda p: run_dgemm(DgemmParams(n=32, block=8, n_threads=p)))

    print("\nScratchpad ablation (DGEMM, 8 threads):")
    for staged in (False, True):
        result = run_dgemm(DgemmParams(n=32, block=8, n_threads=8,
                                       use_scratchpad=staged))
        label = "scratchpad tiles" if staged else "cache path      "
        print(f"  {label}: {result.cycles:7d} cycles  "
              f"{result.flops_per_cycle:.2f} flops/cycle")


if __name__ == "__main__":
    main()
