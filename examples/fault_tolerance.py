#!/usr/bin/env python3
"""Running with broken components (the paper's Section 5 future work).

Breaks a memory bank, a thread unit, and an FPU on one chip, then runs
the same STREAM Triad on the degraded chip — the address space stays
contiguous (the max-memory register shrinks), the kernel allocates
around the dead units, and the results still verify.

Run:  python examples/fault_tolerance.py
"""

from repro import Chip, FaultController, Kernel, StreamParams, run_stream


def triad_on(chip, n_threads: int):
    return run_stream(
        StreamParams(kernel="triad", n_elements=n_threads * 400,
                     n_threads=n_threads),
        chip=chip,
    )


def main() -> None:
    healthy = Chip()
    result = triad_on(healthy, 32)
    print(f"healthy chip:   {result.bandwidth_gb_s:5.1f} GB/s, "
          f"{healthy.memory.address_map.max_memory >> 20} MB usable, "
          f"verified={result.verified}")

    degraded = Chip()
    faults = FaultController(degraded)
    new_max = faults.fail_bank(3)
    faults.fail_thread(5)
    faults.fail_fpu(7)  # disables all of quad 7
    print(f"\ninjected faults: {faults.summary()}")
    print(f"max-memory register now {new_max >> 20} MB "
          f"(address space re-mapped contiguously)")

    result = triad_on(degraded, 32)
    print(f"degraded chip:  {result.bandwidth_gb_s:5.1f} GB/s, "
          f"verified={result.verified}")
    print(f"usable threads: {len(degraded.enabled_threads)} of 128 "
          f"(1 broken thread + 4 in the disabled quad)")


if __name__ == "__main__":
    main()
