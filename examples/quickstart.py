#!/usr/bin/env python3
"""Quickstart: boot a Cyclops chip, run a parallel dot product.

Demonstrates the core public API: build the paper's chip, boot the
resident kernel, allocate vectors in the single address space, spawn
software threads whose bodies issue timed loads/FMAs, synchronize with
the wired-OR hardware barrier, and read out cycle counts.

Run:  python examples/quickstart.py
"""

from repro import Chip, Kernel

N = 4096
N_THREADS = 16


def dot_product_body(ctx, a_base, b_base, lo, hi, partials, barrier):
    """One thread's slice of the dot product."""
    total = 0.0
    for i in range(lo, hi):
        ta, va = yield from ctx.load_f64(ctx.ea(a_base + 8 * i))
        tb, vb = yield from ctx.load_f64(ctx.ea(b_base + 8 * i))
        yield from ctx.fp_fma(deps=(ta, tb))
        total += va * vb
        ctx.charge_ops(2)  # index bookkeeping
        ctx.branch()
    partials[ctx.software_index] = total
    yield from barrier.wait(ctx)
    return total


def main() -> None:
    chip = Chip()  # the paper's design point: 128 threads, 8 MB
    print(f"booting {chip} "
          f"({chip.peak_gflops:.0f} GFlops peak, "
          f"{chip.config.peak_memory_bandwidth / 1e9:.1f} GB/s memory)")

    kernel = Kernel(chip)
    a = kernel.heap.alloc_f64_array(N)
    b = kernel.heap.alloc_f64_array(N)
    chip.memory.backing.f64_view(a, N)[:] = 1.5
    chip.memory.backing.f64_view(b, N)[:] = 2.0

    barrier = kernel.hardware_barrier(0, N_THREADS)
    partials = [0.0] * N_THREADS
    chunk = N // N_THREADS
    threads = [
        kernel.spawn(dot_product_body, a, b, t * chunk, (t + 1) * chunk,
                     partials, barrier)
        for t in range(N_THREADS)
    ]
    cycles = kernel.run()

    result = sum(partials)
    expected = 1.5 * 2.0 * N
    print(f"dot product = {result} (expected {expected})")
    assert result == expected

    print(f"finished in {cycles} cycles "
          f"({kernel.seconds(cycles) * 1e6:.1f} simulated microseconds)")
    for thread in threads[:3]:
        c = thread.ctx.tu.counters
        print(f"  {thread.name}: {c.instructions} instructions, "
              f"{c.run_cycles} run / {c.stall_cycles} stall cycles")


if __name__ == "__main__":
    main()
