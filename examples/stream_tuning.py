#!/usr/bin/env python3
"""STREAM tuning walk-through: Section 3.2.2 of the paper, step by step.

Starts from the out-of-the-box multithreaded STREAM and applies each of
the paper's optimizations in turn — blocked partitioning, local-cache
interest groups, balanced thread allocation, 4-way unrolling — printing
the bandwidth gained at each step, exactly the narrative of Figure 5.

Run:  python examples/stream_tuning.py  [--threads N] [--per-thread N]
"""

import argparse

from repro import AllocationPolicy, StreamParams, run_stream
from repro.analysis.stream_report import STREAM_HEADERS, stream_summary_row
from repro.analysis.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=32)
    parser.add_argument("--per-thread", type=int, default=400)
    parser.add_argument("--kernel", default="triad",
                        choices=["copy", "scale", "add", "triad"])
    args = parser.parse_args()

    n = args.per_thread * args.threads
    steps = [
        ("cyclic partitioning", dict(partition="cyclic")),
        ("blocked partitioning", dict(partition="block")),
        ("+ local caches (interest groups)",
         dict(partition="block", local_caches=True)),
        ("+ balanced allocation",
         dict(partition="block", local_caches=True,
              policy=AllocationPolicy.BALANCED)),
        ("+ 4-way unrolling",
         dict(partition="block", local_caches=True,
              policy=AllocationPolicy.BALANCED, unroll=4)),
    ]

    rows = []
    previous = None
    print(f"STREAM {args.kernel}, {args.threads} threads, "
          f"{args.per_thread} elements/thread\n")
    for name, overrides in steps:
        result = run_stream(StreamParams(
            kernel=args.kernel, n_elements=n, n_threads=args.threads,
            **overrides,
        ))
        gain = "" if previous is None else \
            f"  ({100 * (result.bandwidth / previous - 1):+.0f}%)"
        print(f"{name:38s} {result.bandwidth_gb_s:6.1f} GB/s{gain}"
              f"   verified={result.verified}")
        previous = result.bandwidth
        rows.append(stream_summary_row(result))

    print()
    print(format_table(STREAM_HEADERS, rows, title="Details"))


if __name__ == "__main__":
    main()
