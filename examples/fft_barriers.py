#!/usr/bin/env python3
"""Hardware vs software barriers on the Splash-2 FFT (Figure 7 story).

Runs the six-step FFT with the wired-OR hardware barrier and with the
software combining tree, printing the total/run/stall cycle breakdown —
watch the run cycles go *up* under the hardware barrier (full-speed SPR
spinning) while the stalls collapse.

Run:  python examples/fft_barriers.py [--points N] [--threads N]
"""

import argparse

from repro.analysis.tables import format_table
from repro.workloads.fft import FFTParams, run_fft


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=1024,
                        help="FFT size (power of two, perfect square)")
    parser.add_argument("--threads", type=int, default=8,
                        help="power-of-two thread count")
    args = parser.parse_args()

    results = {}
    for barrier in ("sw", "hw"):
        results[barrier] = run_fft(FFTParams(
            n_points=args.points, n_threads=args.threads, barrier=barrier,
        ))
        r = results[barrier]
        print(f"{barrier} barrier: {r.total_cycles} cycles "
              f"(run {r.run_cycles}, stall {r.stall_cycles}, "
              f"{r.barrier_episodes} barrier episodes, "
              f"verified={r.verified})")

    hw, sw = results["hw"], results["sw"]
    rows = [
        ["total", sw.total_cycles, hw.total_cycles,
         100 * (hw.total_cycles - sw.total_cycles) / sw.total_cycles],
        ["run", sw.run_cycles, hw.run_cycles,
         100 * (hw.run_cycles - sw.run_cycles) / sw.run_cycles],
        ["stall", sw.stall_cycles, hw.stall_cycles,
         100 * (hw.stall_cycles - sw.stall_cycles) / sw.stall_cycles],
    ]
    print()
    print(format_table(["cycles", "software", "hardware", "delta %"], rows,
                       title=f"{args.points}-point FFT, "
                             f"{args.threads} threads"))


if __name__ == "__main__":
    main()
