#!/usr/bin/env python3
"""Interest groups in action: software-controlled cache placement.

Shows the three placement regimes of Table 1:

1. the default one-of-all group — one coherent 512 KB unit, mostly
   remote hits (only 1 in 32 accesses lands locally);
2. a pinned single cache — deterministic home, fast for its owner quad;
3. the thread's-own group — per-quad replication of shared read-only
   data, every access a local hit;

and, in strict-incoherence mode, the hazard the paper warns about: OWN
replication without software coherence lets two quads observe different
values for the same physical address.

The interest-group byte is the top byte of the 32-bit effective address
(paper Section 2.1 / Table 1): bits 7-5 select the sharing level (own /
1 / 2 / 4 / 8 / 16 / all-32 caches) and bits 4-0 select which set of
caches at that level — see docs/memory-model.md for the full encoding
table. The final section replays the stale-read hazard under the
coherence sanitizer (repro.sanitizer), which pinpoints the guilty write.

Run:  python examples/interest_groups.py
"""

from repro import Chip, IG_OWN, InterestGroup, Kernel, Level
from repro.memory.address import make_effective
from repro.sanitizer import CoherenceSanitizer


def measure(kernel, label, ig_byte, n_words=256):
    """Average load latency over a small array under one interest group."""
    chip = kernel.chip
    base = kernel.heap.alloc(4 * n_words)

    def body(ctx):
        start = ctx.time
        t = 0
        for i in range(n_words):
            t, _ = yield from ctx.load_u32(
                make_effective(base + 4 * i, ig_byte), deps=(t,))
        first_pass = ctx.time - start
        start = ctx.time
        t = 0
        for i in range(n_words):
            t, _ = yield from ctx.load_u32(
                make_effective(base + 4 * i, ig_byte), deps=(t,))
        return first_pass, ctx.time - start

    thread = kernel.spawn(body)
    kernel.run()
    cold, warm = thread.result
    print(f"{label:42s} cold {cold / n_words:5.1f}  "
          f"warm {warm / n_words:5.1f} cycles/load")


def main() -> None:
    print("Average load latency per interest group (one thread, quad 0):\n")
    for label, ig_byte in [
        ("one-of-all (default 512 KB unit)",
         InterestGroup(Level.ALL).encode()),
        ("pinned to the local cache (ONE, 0)",
         InterestGroup(Level.ONE, 0).encode()),
        ("pinned to a remote cache (ONE, 20)",
         InterestGroup(Level.ONE, 20).encode()),
        ("thread's own cache (group zero)", IG_OWN),
    ]:
        measure(Kernel(Chip()), label, ig_byte)

    print("\nReplication without hardware coherence (strict mode):")
    chip = Chip(strict_incoherence=True)
    ea = make_effective(0x1000, IG_OWN)
    # Quad 0 and quad 9 each pull the line into their own cache.
    chip.memory.load_f64(0, 0, ea)
    chip.memory.load_f64(10, 9, ea)
    # Quad 0 stores 1.0 — only its own copy changes.
    chip.memory.store_f64(20, 0, ea, 1.0)
    _, seen_by_0 = chip.memory.load_f64(30, 0, ea)
    _, seen_by_9 = chip.memory.load_f64(40, 9, ea)
    print(f"  quad 0 reads {seen_by_0}, quad 9 reads {seen_by_9} "
          f"-> stale copy, exactly the paper's caveat: software must "
          f"manage OWN-group replication")
    # Software-managed coherence: flush the writer, invalidate the reader.
    chip.memory.flush_cache(0)
    chip.memory.caches[9].invalidate(0x1000)
    _, after = chip.memory.load_f64(50, 9, ea)
    print(f"  after flush+invalidate quad 9 reads {after}")

    # The same bug, caught automatically: the coherence sanitizer keeps
    # shadow state beside the caches and reports the stale read with the
    # provenance of the write that never reached the reader's copy.
    print("\nThe same hazard under the coherence sanitizer:")
    chip = Chip()
    # (Under CYCLOPS_SANITIZE=1 the chip attached one at construction.)
    sanitizer = chip.sanitizer or CoherenceSanitizer().attach(chip)
    writer = sanitizer.thread_view(chip.memory, tid=0)   # a TU in quad 0
    reader = sanitizer.thread_view(chip.memory, tid=36)  # a TU in quad 9
    writer.load_f64(0, 0, ea)
    reader.load_f64(10, 9, ea)   # both quads now replicate the line
    writer.store_f64(20, 0, ea, 1.0)  # only quad 0's copy changes
    reader.load_f64(30, 9, ea)   # quad 9 still reads its old copy
    for finding in sanitizer.findings:
        print(f"  {finding.render()}")


if __name__ == "__main__":
    main()
