#!/usr/bin/env python3
"""Check that relative markdown links point at files that exist.

Scans ``README.md`` and everything under ``docs/`` by default (pass
explicit paths to scan something else), extracts inline markdown links,
and verifies every relative target resolves against the linking file's
directory. External links (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#...``) are ignored; a ``path#anchor`` target is
checked for the path only.

Exit status 0 when every link resolves, 1 otherwise (one line per dead
link, ``file:line: target``). Run from anywhere inside the repo:

    python tools/check_doc_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown link: [text](target) — target captured up to the
#: first unescaped closing parenthesis (no nested parens in our docs).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def dead_links(paths: list[pathlib.Path]) -> list[tuple[pathlib.Path, int, str]]:
    """All unresolvable relative links as (file, line_number, target)."""
    dead = []
    for path in paths:
        for line_number, line in enumerate(
                path.read_text().splitlines(), start=1):
            for target in LINK.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                candidate = target.split("#", 1)[0]
                if not candidate:
                    continue
                if not (path.parent / candidate).exists():
                    dead.append((path, line_number, target))
    return dead


def default_paths(root: pathlib.Path) -> list[pathlib.Path]:
    """README.md plus every markdown file under docs/."""
    paths = [root / "README.md"]
    paths.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in paths if path.exists()]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(__file__).resolve().parent.parent
    paths = [pathlib.Path(arg) for arg in argv] if argv \
        else default_paths(root)
    dead = dead_links(paths)
    for path, line_number, target in dead:
        try:
            shown = path.resolve().relative_to(root)
        except ValueError:
            shown = path
        print(f"{shown}:{line_number}: dead link -> {target}")
    if dead:
        print(f"{len(dead)} dead link(s) in {len(paths)} file(s)",
              file=sys.stderr)
        return 1
    print(f"ok: all relative links resolve in {len(paths)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
